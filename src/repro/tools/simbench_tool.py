"""``repro-simbench`` — measure compiled-engine throughput.

Three benchmark families, selectable with ``--bench``:

* ``sim`` — cache-simulation engines on a reproducible graph-shaped
  trace (zipf-popular property blocks with streaming vertex/edge runs,
  multi-core, mixed reads/writes);
* ``trace`` — trace construction (stable keyed merge + run-length
  compression) kernel vs the numpy ``argsort`` reference, on both a
  shuffled quarter-lattice workload (counting-sort kernel path) and a
  builder-shaped interleaved workload (run-merge kernel path);
* ``gorder`` — the compiled Gorder placement loop vs the Python heap
  loop on an R-MAT graph;
* ``relabel`` — CSR regeneration under a permutation: the O(E)
  counting-placement graph kernel vs the dual-argsort numpy reference
  on a dataset analog;
* ``build`` — dual-CSR construction from a shuffled edge list: the
  counting-sort graph kernel vs the stable-argsort numpy reference;
* ``stream`` — the fused streaming trace→simulate path vs materializing
  the whole trace first, on a dataset analog (asserts identical miss
  counters, reports chunk statistics and process peak RSS).

``--threads N`` additionally times the pthread-chunked ``fast-threaded``
variant of every kernel that has one (sim, trace, relabel, build) with
``N`` workers.  Every timed pair is asserted bit-identical before
speedups are printed.  ``--json`` archives the numbers in the
``BENCH_cachesim.json`` format the benchmark harness also emits,
including the thread count, streaming chunk size and peak RSS.

Examples::

    repro-simbench --runs 500000
    repro-simbench --policy lip --engines fast
    repro-simbench --bench trace --trace-runs 262144 --threads 8
    repro-simbench --bench relabel --graph-dataset sd
    repro-simbench --bench stream --graph-dataset sd --chunk-edges 65536
    repro-simbench --bench all --json BENCH_cachesim.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.cachesim import (
    DEFAULT_HIERARCHY,
    HierarchyConfig,
    fast_available,
    get_policy,
    policy_names,
    simulate_trace,
)
from repro.framework import fasttrace
from repro.framework.trace import MemoryTrace

__all__ = [
    "main",
    "make_microbench_trace",
    "make_trace_build_streams",
    "reference_trace_build",
    "time_engines",
    "time_trace_build",
    "time_gorder",
    "time_relabel",
    "time_csr_build",
    "time_stream",
    "peak_rss_kb",
]


def peak_rss_kb() -> int | None:
    """This process's peak resident set size in KiB (None off-Linux).

    ``ru_maxrss`` is a high-water mark — it never decreases within a
    process — so it bounds every path timed so far rather than isolating
    one; per-path isolation needs subprocesses (the scale benchmark
    harness does that).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def make_microbench_trace(runs: int, seed: int = 0, write_fraction: float = 0.05,
                          num_cores: int = 40) -> MemoryTrace:
    """A synthetic trace with graph-workload reuse structure.

    Mirrors what app traces look like after run-length compression: a
    zipf-skewed irregular property stream (temporal reuse concentrated on
    hot blocks) interleaved with sequentially streamed vertex/edge-array
    runs that carry multi-access counts.
    """
    rng = np.random.default_rng(seed)
    irregular = (rng.zipf(1.2, size=runs) % 4096).astype(np.int64)
    # Every 8th run is a streamed block from a disjoint region, visited
    # once with 8 packed accesses (64B block / 8B elements).
    stream_positions = np.arange(0, runs, 8)
    blocks = irregular.copy()
    blocks[stream_positions] = 1 << 20  # disjoint region base
    blocks[stream_positions] += np.arange(stream_positions.size)
    counts = np.ones(runs, dtype=np.int64)
    counts[stream_positions] = 8
    writes = rng.random(runs) < write_fraction
    cores = rng.integers(0, num_cores, size=runs, dtype=np.int64)
    return MemoryTrace(blocks, counts, writes, cores)


def make_trace_build_streams(
    n: int, seed: int = 0, kind: str = "shuffled", num_cores: int = 40
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated keyed streams for benchmarking the trace-build merge.

    ``kind`` selects which kernel path the workload exercises:

    * ``shuffled`` — quarter-lattice time keys in random order (no long
      sorted runs), the counting-sort path;
    * ``interleaved`` — builder-shaped streams: per-core ascending runs
      with interleave-quantum jumps, plus edge/weight streams at the
      same keys minus fractional offsets, the run-merge path.
    """
    rng = np.random.default_rng(seed)
    if kind == "shuffled":
        # Heavy key ties (16 entries per distinct key on average) both
        # exercise the kernel's stable tie-breaking and keep the
        # counting-sort histogram cache-resident, as it is for real
        # per-cell stream sizes.
        keys = rng.integers(0, max(1, n // 16), size=n).astype(np.float64)
        keys += rng.choice(np.array([-0.5, 0.0, 0.25]), size=n)
        blocks = rng.integers(0, 1 << 18, size=n, dtype=np.int64)
        cores = rng.integers(0, num_cores, size=n, dtype=np.int64)
    elif kind == "interleaved":
        # Mirror GraphApp streams: the edge array is touched at key-0.5
        # just before the property access it feeds at key; keys are the
        # global edge index plus interleave-quantum jumps per core
        # segment, so only a handful of runs are active at any key (the
        # structure the run-merge kernel path is built for).
        m = n // 2
        edge_id = np.arange(m, dtype=np.int64)
        chunk = max(1, -(-m // num_cores))
        core = edge_id // chunk
        local = edge_id - core * chunk
        base = edge_id.astype(np.float64) + (local // 128) * (2.0 * m)
        keys = np.concatenate([base - 0.5, base])
        blocks = np.concatenate(
            [
                edge_id // 8,  # streamed edge blocks
                (1 << 20) + rng.integers(0, 4096, size=m),  # property
            ]
        ).astype(np.int64)
        cores = np.concatenate([core, core]).astype(np.int64)
        n = 2 * m
    else:
        raise ValueError(f"unknown trace-build workload kind {kind!r}")
    writes = rng.random(n) < 0.3
    return blocks, keys, writes, cores


def reference_trace_build(
    blocks: np.ndarray,
    keys: np.ndarray,
    writes: np.ndarray,
    cores: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The numpy reference merge + RLE (same code path as TraceBuilder)."""
    order = np.argsort(keys, kind="stable")
    blocks, writes, cores = blocks[order], writes[order], cores[order]
    change = np.empty(blocks.size, dtype=bool)
    change[0] = True
    change[1:] = (
        (blocks[1:] != blocks[:-1])
        | (writes[1:] != writes[:-1])
        | (cores[1:] != cores[:-1])
    )
    boundaries = np.flatnonzero(change)
    counts = np.diff(np.append(boundaries, blocks.size))
    return blocks[boundaries], counts.astype(np.int64), writes[boundaries], cores[boundaries]


def time_trace_build(
    n: int = 262_144,
    seed: int = 0,
    kind: str = "shuffled",
    repeats: int = 5,
    threads: int = 1,
) -> dict:
    """Best-of-``repeats`` trace-build time, kernel vs numpy reference.

    Asserts the engines (reference, serial kernel and — with
    ``threads > 1`` — the pthread-chunked kernel) produce byte-identical
    compressed traces.
    """
    blocks, keys, writes, cores = make_trace_build_streams(n, seed=seed, kind=kind)
    best_ref = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ref = reference_trace_build(blocks, keys, writes, cores)
        best_ref = min(best_ref, time.perf_counter() - start)
    results: dict = {
        "workload": kind,
        "n": int(keys.size),
        "runs": int(ref[0].size),
        "threads": threads,
        "engines": {
            "reference": {"seconds": best_ref, "keys_per_second": keys.size / best_ref}
        },
    }
    if fasttrace.fast_available():

        def timed(workers: int) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fast = fasttrace.trace_build_fast(
                    blocks, keys, writes, cores, threads=workers
                )
                best = min(best, time.perf_counter() - start)
            for r, f in zip(ref, fast):
                if r.tobytes() != np.ascontiguousarray(f, dtype=r.dtype).tobytes():
                    raise AssertionError("fast trace-build diverged from reference")
            return best

        best_fast = timed(1)
        results["engines"]["fast"] = {
            "seconds": best_fast,
            "keys_per_second": keys.size / best_fast,
        }
        results["speedup_fast_over_reference"] = best_ref / best_fast
        if threads > 1:
            best_threaded = timed(threads)
            results["engines"]["fast-threaded"] = {
                "seconds": best_threaded,
                "keys_per_second": keys.size / best_threaded,
            }
            results["speedup_threaded_over_fast"] = best_fast / best_threaded
    return results


def time_gorder(
    scale: int = 13, avg_degree: int = 16, window: int = 5, repeats: int = 3
) -> dict:
    """Best-of-``repeats`` Gorder placement time, kernel vs Python loop.

    Asserts both engines compute the identical permutation.
    """
    from repro.graph.generators.rmat import rmat_graph
    from repro.reorder.gorder import Gorder

    graph = rmat_graph(scale, avg_degree=avg_degree, seed=1)
    technique = Gorder(window=window)
    saved = os.environ.get("REPRO_TRACE_ENGINE")
    try:
        os.environ["REPRO_TRACE_ENGINE"] = "reference"
        best_ref = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            ref = technique.compute_mapping(graph)
            best_ref = min(best_ref, time.perf_counter() - start)
    finally:
        if saved is None:
            os.environ.pop("REPRO_TRACE_ENGINE", None)
        else:
            os.environ["REPRO_TRACE_ENGINE"] = saved
    results: dict = {
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "window": window,
        "engines": {
            "reference": {
                "seconds": best_ref,
                "vertices_per_second": graph.num_vertices / best_ref,
            }
        },
    }
    if fasttrace.fast_available():
        try:
            os.environ["REPRO_TRACE_ENGINE"] = "fast"
            best_fast = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fast = technique.compute_mapping(graph)
                best_fast = min(best_fast, time.perf_counter() - start)
        finally:
            if saved is None:
                os.environ.pop("REPRO_TRACE_ENGINE", None)
            else:
                os.environ["REPRO_TRACE_ENGINE"] = saved
        if not np.array_equal(ref, fast):
            raise AssertionError("fast Gorder mapping diverged from reference")
        results["engines"]["fast"] = {
            "seconds": best_fast,
            "vertices_per_second": graph.num_vertices / best_fast,
        }
        results["speedup_fast_over_reference"] = best_ref / best_fast
    return results


def _assert_same_graph(ref, fast, label: str) -> None:
    if ref != fast:
        raise AssertionError(f"fast {label} diverged from reference")
    if ref.is_weighted and not (
        np.array_equal(ref.out_weights, fast.out_weights)
        and np.array_equal(ref.in_weights, fast.in_weights)
    ):
        raise AssertionError(f"fast {label} weights diverged from reference")


def time_relabel(
    dataset: str = "sd",
    seed: int = 0,
    weighted: bool = False,
    repeats: int = 5,
    threads: int = 1,
) -> dict:
    """Best-of-``repeats`` CSR relabel time, graph kernel vs numpy.

    Relabels a dataset analog under a seeded random permutation (the
    worst-case scatter pattern, and what RandomVertex produces) and
    asserts every engine emits bit-identical dual CSRs.
    """
    from repro.graph.fastgraph import fast_available as graph_fast_available
    from repro.graph.generators import load_dataset

    graph = load_dataset(dataset, weighted=weighted)
    mapping = np.random.default_rng(seed).permutation(graph.num_vertices)
    best_ref = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ref = graph.relabel(mapping, engine="reference")
        best_ref = min(best_ref, time.perf_counter() - start)
    results: dict = {
        "dataset": dataset,
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "weighted": weighted,
        "threads": threads,
        "engines": {
            "reference": {
                "seconds": best_ref,
                "edges_per_second": graph.num_edges / best_ref,
            }
        },
    }
    if graph_fast_available():

        def timed(engine: str, workers: int) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fast = graph.relabel(mapping, engine=engine, threads=workers)
                best = min(best, time.perf_counter() - start)
            _assert_same_graph(ref, fast, "relabel")
            return best

        best_fast = timed("fast", 1)
        results["engines"]["fast"] = {
            "seconds": best_fast,
            "edges_per_second": graph.num_edges / best_fast,
        }
        results["speedup_fast_over_reference"] = best_ref / best_fast
        if threads > 1:
            best_threaded = timed("fast-threaded", threads)
            results["engines"]["fast-threaded"] = {
                "seconds": best_threaded,
                "edges_per_second": graph.num_edges / best_threaded,
            }
            results["speedup_threaded_over_fast"] = best_fast / best_threaded
    return results


def time_csr_build(
    dataset: str = "sd",
    seed: int = 0,
    weighted: bool = False,
    repeats: int = 5,
    threads: int = 1,
) -> dict:
    """Best-of-``repeats`` dual-CSR build time, graph kernel vs numpy.

    Rebuilds a dataset analog from its own edge list in shuffled order
    (what generators and ``from_edges`` callers feed the builder) and
    asserts every engine emits bit-identical dual CSRs.
    """
    from repro.graph.csr import _build_dual_csr
    from repro.graph.fastgraph import fast_available as graph_fast_available
    from repro.graph.generators import load_dataset

    graph = load_dataset(dataset, weighted=weighted)
    src, dst = graph.edge_array()
    order = np.random.default_rng(seed).permutation(graph.num_edges)
    src = src[order].astype(np.int64)
    dst = dst[order].astype(np.int64)
    weights = graph.out_weights[order] if weighted else None
    best_ref = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ref = _build_dual_csr(
            graph.num_vertices, src, dst, weights, stable=True, engine="reference"
        )
        best_ref = min(best_ref, time.perf_counter() - start)
    results: dict = {
        "dataset": dataset,
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "weighted": weighted,
        "threads": threads,
        "engines": {
            "reference": {
                "seconds": best_ref,
                "edges_per_second": graph.num_edges / best_ref,
            }
        },
    }
    if graph_fast_available():

        def timed(engine: str, workers: int) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fast = _build_dual_csr(
                    graph.num_vertices, src, dst, weights, stable=True,
                    engine=engine, threads=workers,
                )
                best = min(best, time.perf_counter() - start)
            _assert_same_graph(ref, fast, "CSR build")
            return best

        best_fast = timed("fast", 1)
        results["engines"]["fast"] = {
            "seconds": best_fast,
            "edges_per_second": graph.num_edges / best_fast,
        }
        results["speedup_fast_over_reference"] = best_ref / best_fast
        if threads > 1:
            best_threaded = timed("fast-threaded", threads)
            results["engines"]["fast-threaded"] = {
                "seconds": best_threaded,
                "edges_per_second": graph.num_edges / best_threaded,
            }
            results["speedup_threaded_over_fast"] = best_fast / best_threaded
    return results


def time_stream(
    dataset: str = "sd",
    app_name: str = "PR",
    chunk_edges: int | None = None,
    threads: int = 1,
    repeats: int = 2,
) -> dict:
    """Fused streaming trace→simulate vs the materialized two-stage path.

    Builds one app's super-step trace both ways on a dataset analog,
    asserts the cache counters are identical, and reports wall time,
    chunk statistics (count, peak runs held at once) and the process
    peak RSS.  ``ru_maxrss`` is process-monotonic, so the recorded value
    bounds *both* paths; the scale benchmark isolates them in
    subprocesses for the RSS-reduction acceptance number.
    """
    from repro.apps import make_app
    from repro.graph.generators import load_dataset

    graph = load_dataset(dataset, weighted=app_name == "SSSP")
    app = make_app(app_name)
    plan = app.plan(graph)
    config = DEFAULT_HIERARCHY
    engine = "fast-threaded" if threads > 1 else None
    kernel_threads = threads if threads > 1 else None

    best_mat = float("inf")
    mat_stats = None
    trace_runs = 0
    for _ in range(repeats):
        start = time.perf_counter()
        app_trace = app.trace(graph, plan)
        mat_stats = simulate_trace(
            app_trace.trace, config, engine=engine, threads=kernel_threads
        )
        best_mat = min(best_mat, time.perf_counter() - start)
        trace_runs = len(app_trace.trace)

    best_fused = float("inf")
    fused_stats = None
    streaming = None
    for _ in range(repeats):
        start = time.perf_counter()
        fused = app.trace_streaming(
            graph, plan, chunk_edges=chunk_edges, engine=engine,
            threads=kernel_threads,
        )
        fused_stats = simulate_trace(
            fused.trace, config, engine=engine, threads=kernel_threads
        )
        best_fused = min(best_fused, time.perf_counter() - start)
        streaming = fused.trace

    if (
        mat_stats.l1_misses,
        mat_stats.l2_misses,
        mat_stats.l3_misses,
        mat_stats.accesses,
        mat_stats.l2_miss_breakdown,
    ) != (
        fused_stats.l1_misses,
        fused_stats.l2_misses,
        fused_stats.l3_misses,
        fused_stats.accesses,
        fused_stats.l2_miss_breakdown,
    ):
        raise AssertionError("fused streaming path diverged from materialized")
    if streaming.runs_streamed != trace_runs:
        raise AssertionError(
            "streamed run sequence differs in length from the materialized trace"
        )
    return {
        "dataset": dataset,
        "app": app_name,
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "threads": threads,
        "chunk_edges": streaming.detail.get("chunk_edges"),
        "trace_runs": trace_runs,
        "chunks_streamed": streaming.chunks_streamed,
        "peak_chunk_runs": streaming.peak_chunk_runs,
        "accesses": int(fused_stats.accesses),
        "peak_rss_kb": peak_rss_kb(),
        "paths": {
            "materialized": {
                "seconds": best_mat,
                "accesses_per_second": mat_stats.accesses / best_mat,
            },
            "fused": {
                "seconds": best_fused,
                "accesses_per_second": fused_stats.accesses / best_fused,
            },
        },
        "fused_over_materialized_time": best_fused / best_mat,
    }


def time_engines(
    trace: MemoryTrace,
    config: HierarchyConfig,
    engines: list[str],
    repeats: int = 1,
    threads: int = 1,
    hot_blocks: np.ndarray | None = None,
) -> dict:
    """Best-of-``repeats`` wall time per engine; asserts identical counters.

    ``threads`` applies to the ``fast-threaded`` engine only (others run
    their usual serial kernels).  ``hot_blocks`` feeds skew-aware
    policies (``grasp``) the hot-block classification; it is passed to
    every engine so the bit-identity assertion covers protection too.
    """
    results: dict = {"engines": {}, "threads": threads}
    reference_stats = None
    for engine in engines:
        workers = threads if engine == "fast-threaded" else None
        best = float("inf")
        stats = None
        for _ in range(repeats):
            start = time.perf_counter()
            stats = simulate_trace(
                trace, config, engine=engine, threads=workers,
                hot_blocks=hot_blocks,
            )
            best = min(best, time.perf_counter() - start)
        if reference_stats is None:
            reference_stats = stats
        elif (stats.l1_misses, stats.l2_misses, stats.l3_misses, stats.l2_miss_breakdown) != (
            reference_stats.l1_misses,
            reference_stats.l2_misses,
            reference_stats.l3_misses,
            reference_stats.l2_miss_breakdown,
        ):
            raise AssertionError(f"engine {engine!r} diverged from {engines[0]!r}")
        results["engines"][engine] = {
            "seconds": best,
            "accesses": stats.accesses,
            "runs": len(trace),
            "accesses_per_second": stats.accesses / best if best > 0 else 0.0,
        }
    engine_times = results["engines"]
    if "reference" in engine_times and "fast" in engine_times:
        results["speedup_fast_over_reference"] = (
            engine_times["reference"]["seconds"] / engine_times["fast"]["seconds"]
        )
    if "fast" in engine_times and "fast-threaded" in engine_times:
        results["speedup_threaded_over_fast"] = (
            engine_times["fast"]["seconds"]
            / engine_times["fast-threaded"]["seconds"]
        )
    return results


def _print_speedup(results: dict) -> None:
    if "speedup_fast_over_reference" in results:
        print(f"  speedup: {results['speedup_fast_over_reference']:.1f}x")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the compiled engines (cachesim, trace build, Gorder)."
    )
    parser.add_argument(
        "--bench",
        choices=["sim", "trace", "gorder", "relabel", "build", "stream", "all"],
        default="sim",
        help="which benchmark family to run",
    )
    parser.add_argument("--threads", type=int, default=1,
                        help="also time the fast-threaded kernels with this "
                             "many workers (sim/trace/relabel/build)")
    parser.add_argument("--chunk-edges", type=int, default=None,
                        help="streaming chunk size in edges for the stream bench")
    parser.add_argument("--stream-app", type=str, default="PR",
                        help="application for the stream bench")
    parser.add_argument("--runs", type=int, default=500_000,
                        help="compressed trace runs to simulate (sim bench)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--policy", choices=list(policy_names()), default="lru",
                        help="replacement policy for the sim bench (skew-aware "
                             "policies get the zipf head as hot blocks)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats per engine (best is kept)")
    parser.add_argument("--engines", nargs="+", default=None,
                        choices=["reference", "fast", "fast-threaded"],
                        help="sim engines to time (default: all available; "
                             "fast-threaded only with --threads > 1)")
    parser.add_argument("--trace-runs", type=int, default=262_144,
                        help="stream entries for the trace-build bench")
    parser.add_argument("--gorder-scale", type=int, default=13,
                        help="R-MAT scale exponent for the Gorder bench")
    parser.add_argument("--graph-dataset", type=str, default="sd",
                        help="dataset analog for the relabel/build benches")
    parser.add_argument("--json", type=str, default=None,
                        help="also write results as JSON to this path")
    args = parser.parse_args(argv)

    if args.threads < 1:
        parser.error("--threads must be >= 1")
    output: dict = {
        "config": {
            "threads": args.threads,
            "chunk_edges": args.chunk_edges,
            "seed": args.seed,
        }
    }
    if args.bench in ("sim", "all"):
        engines = args.engines
        if engines is None:
            engines = ["reference"] + (["fast"] if fast_available() else [])
            if args.threads > 1 and fast_available():
                engines.append("fast-threaded")
        if any(e != "reference" for e in engines) and not fast_available():
            parser.error("fast engine unavailable (no C compiler?)")
        config = HierarchyConfig(
            l1=DEFAULT_HIERARCHY.l1,
            l2=DEFAULT_HIERARCHY.l2,
            l3=DEFAULT_HIERARCHY.l3,
            replacement=args.policy,
        )
        trace = make_microbench_trace(args.runs, seed=args.seed)
        hot_blocks = None
        if get_policy(args.policy, context="--policy").needs_hot_blocks:
            # The zipf(1.2) % 4096 irregular stream concentrates reuse on
            # low block IDs, so the low-ID head is the natural hot set.
            hot_blocks = np.arange(64, dtype=np.int64)
        print(
            f"sim trace: {len(trace):,} runs / {trace.total_accesses:,} accesses, "
            f"policy={args.policy}"
            + (f" ({hot_blocks.size} hot blocks)" if hot_blocks is not None else "")
        )
        results = time_engines(
            trace, config, engines, repeats=args.repeats, threads=args.threads,
            hot_blocks=hot_blocks,
        )
        for engine, row in results["engines"].items():
            print(
                f"{engine:>9s}: {row['seconds']:8.3f}s  "
                f"{row['accesses_per_second'] / 1e6:8.2f} M accesses/s"
            )
        _print_speedup(results)
        output["engines"] = results

    if args.bench in ("trace", "all"):
        for kind in ("shuffled", "interleaved"):
            results = time_trace_build(
                args.trace_runs, seed=args.seed, kind=kind,
                repeats=max(args.repeats, 3), threads=args.threads,
            )
            print(
                f"trace build [{kind}]: {results['n']:,} entries -> "
                f"{results['runs']:,} runs"
            )
            for engine, row in results["engines"].items():
                print(
                    f"{engine:>9s}: {row['seconds'] * 1e3:8.1f}ms  "
                    f"{row['keys_per_second'] / 1e6:8.2f} M keys/s"
                )
            _print_speedup(results)
            output[f"trace_build_{kind}"] = results

    if args.bench in ("gorder", "all"):
        results = time_gorder(scale=args.gorder_scale, repeats=max(args.repeats, 3))
        print(
            f"gorder: {results['vertices']:,} vertices / "
            f"{results['edges']:,} edges, window={results['window']}"
        )
        for engine, row in results["engines"].items():
            print(
                f"{engine:>9s}: {row['seconds'] * 1e3:8.1f}ms  "
                f"{row['vertices_per_second'] / 1e6:8.2f} M vertices/s"
            )
        _print_speedup(results)
        output["gorder"] = results

    if args.bench in ("relabel", "all"):
        results = time_relabel(
            args.graph_dataset, seed=args.seed, repeats=max(args.repeats, 3),
            threads=args.threads,
        )
        print(
            f"relabel [{results['dataset']}]: {results['vertices']:,} vertices / "
            f"{results['edges']:,} edges"
        )
        for engine, row in results["engines"].items():
            print(
                f"{engine:>9s}: {row['seconds'] * 1e3:8.1f}ms  "
                f"{row['edges_per_second'] / 1e6:8.2f} M edges/s"
            )
        _print_speedup(results)
        output["relabel"] = results

    if args.bench in ("build", "all"):
        results = time_csr_build(
            args.graph_dataset, seed=args.seed, repeats=max(args.repeats, 3),
            threads=args.threads,
        )
        print(
            f"csr build [{results['dataset']}]: {results['vertices']:,} vertices / "
            f"{results['edges']:,} edges"
        )
        for engine, row in results["engines"].items():
            print(
                f"{engine:>9s}: {row['seconds'] * 1e3:8.1f}ms  "
                f"{row['edges_per_second'] / 1e6:8.2f} M edges/s"
            )
        _print_speedup(results)
        output["csr_build"] = results

    if args.bench in ("stream", "all"):
        results = time_stream(
            args.graph_dataset,
            app_name=args.stream_app,
            chunk_edges=args.chunk_edges,
            threads=args.threads,
            repeats=args.repeats,
        )
        print(
            f"stream [{results['dataset']}/{results['app']}]: "
            f"{results['trace_runs']:,} runs in {results['chunks_streamed']} "
            f"chunks (peak {results['peak_chunk_runs']:,} runs held)"
        )
        for path, row in results["paths"].items():
            print(
                f"{path:>12s}: {row['seconds']:8.3f}s  "
                f"{row['accesses_per_second'] / 1e6:8.2f} M accesses/s"
            )
        print(
            f"  fused/materialized time: "
            f"{results['fused_over_materialized_time']:.2f}x"
        )
        output["stream"] = results

    output["config"]["peak_rss_kb"] = peak_rss_kb()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(output, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
