"""``repro-simbench`` — measure cache-simulation engine throughput.

Builds a reproducible graph-workload-shaped trace (zipf-popular property
blocks with streaming vertex/edge runs, multi-core, mixed reads/writes),
runs it through the selected engines and prints accesses/second plus the
fast-over-reference speedup.  ``--json`` archives the numbers in the
``BENCH_cachesim.json`` format the benchmark harness also emits.

Examples::

    repro-simbench --runs 500000
    repro-simbench --policy lip --engines fast
    repro-simbench --json BENCH_cachesim.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.cachesim import (
    DEFAULT_HIERARCHY,
    HierarchyConfig,
    fast_available,
    simulate_trace,
)
from repro.framework.trace import MemoryTrace

__all__ = ["main", "make_microbench_trace", "time_engines"]


def make_microbench_trace(runs: int, seed: int = 0, write_fraction: float = 0.05,
                          num_cores: int = 40) -> MemoryTrace:
    """A synthetic trace with graph-workload reuse structure.

    Mirrors what app traces look like after run-length compression: a
    zipf-skewed irregular property stream (temporal reuse concentrated on
    hot blocks) interleaved with sequentially streamed vertex/edge-array
    runs that carry multi-access counts.
    """
    rng = np.random.default_rng(seed)
    irregular = (rng.zipf(1.2, size=runs) % 4096).astype(np.int64)
    # Every 8th run is a streamed block from a disjoint region, visited
    # once with 8 packed accesses (64B block / 8B elements).
    stream_positions = np.arange(0, runs, 8)
    blocks = irregular.copy()
    blocks[stream_positions] = 1 << 20  # disjoint region base
    blocks[stream_positions] += np.arange(stream_positions.size)
    counts = np.ones(runs, dtype=np.int64)
    counts[stream_positions] = 8
    writes = rng.random(runs) < write_fraction
    cores = rng.integers(0, num_cores, size=runs).astype(np.int16)
    return MemoryTrace(blocks, counts, writes, cores)


def time_engines(
    trace: MemoryTrace,
    config: HierarchyConfig,
    engines: list[str],
    repeats: int = 1,
) -> dict:
    """Best-of-``repeats`` wall time per engine; asserts identical counters."""
    results: dict = {"engines": {}}
    reference_stats = None
    for engine in engines:
        best = float("inf")
        stats = None
        for _ in range(repeats):
            start = time.perf_counter()
            stats = simulate_trace(trace, config, engine=engine)
            best = min(best, time.perf_counter() - start)
        if reference_stats is None:
            reference_stats = stats
        elif (stats.l1_misses, stats.l2_misses, stats.l3_misses, stats.l2_miss_breakdown) != (
            reference_stats.l1_misses,
            reference_stats.l2_misses,
            reference_stats.l3_misses,
            reference_stats.l2_miss_breakdown,
        ):
            raise AssertionError(f"engine {engine!r} diverged from {engines[0]!r}")
        results["engines"][engine] = {
            "seconds": best,
            "accesses": stats.accesses,
            "runs": len(trace),
            "accesses_per_second": stats.accesses / best if best > 0 else 0.0,
        }
    engine_times = results["engines"]
    if "reference" in engine_times and "fast" in engine_times:
        results["speedup_fast_over_reference"] = (
            engine_times["reference"]["seconds"] / engine_times["fast"]["seconds"]
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the cache-simulation engines."
    )
    parser.add_argument("--runs", type=int, default=500_000,
                        help="compressed trace runs to simulate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--policy", choices=["lru", "fifo", "lip"], default="lru")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats per engine (best is kept)")
    parser.add_argument("--engines", nargs="+", default=None,
                        choices=["reference", "fast"],
                        help="engines to time (default: both when available)")
    parser.add_argument("--json", type=str, default=None,
                        help="also write results as JSON to this path")
    args = parser.parse_args(argv)

    engines = args.engines
    if engines is None:
        engines = ["reference"] + (["fast"] if fast_available() else [])
    if "fast" in engines and not fast_available():
        parser.error("fast engine unavailable (no C compiler?)")

    config = HierarchyConfig(
        l1=DEFAULT_HIERARCHY.l1,
        l2=DEFAULT_HIERARCHY.l2,
        l3=DEFAULT_HIERARCHY.l3,
        replacement=args.policy,
    )
    trace = make_microbench_trace(args.runs, seed=args.seed)
    print(
        f"trace: {len(trace):,} runs / {trace.total_accesses:,} accesses, "
        f"policy={args.policy}"
    )
    results = time_engines(trace, config, engines, repeats=args.repeats)
    for engine, row in results["engines"].items():
        print(
            f"{engine:>9s}: {row['seconds']:8.3f}s  "
            f"{row['accesses_per_second'] / 1e6:8.2f} M accesses/s"
        )
    if "speedup_fast_over_reference" in results:
        print(f"  speedup: {results['speedup_fast_over_reference']:.1f}x")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
