"""``repro-status`` — inspect and compare observed experiment runs.

Every observed run leaves a directory ``runs/<run_id>/`` containing the
merged span/event stream (``events.jsonl``) and the provenance manifest
(``manifest.json``) — see :mod:`repro.observability`.  Subcommands::

    repro-status summary [RUN]          # manifest overview (default: latest)
    repro-status summary --json [RUN]   # same, machine-readable
    repro-status spans --top 10 [RUN]   # heaviest spans by wall time
    repro-status events --stage trace [RUN]   # filtered event dump
    repro-status diff RUN_A RUN_B       # stage timings + store counters delta

``RUN`` is a run id (directory name under the runs root) or a path to a
run directory.  All subcommands accept ``--runs-dir`` to target a
specific root; the default is ``$REPRO_RUNS_DIR`` or ``./runs``.

Partial runs are first-class: a run killed mid-write (missing manifest,
truncated event log, or an empty directory) is reported as partial, not
a crash — the whole point is diagnosing runs that did not finish.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.observability import run as runmod

__all__ = ["main"]

#: Stages whose spans represent real recomputation (a warm store replay
#: must show zero of these — the ``diff`` subcommand counts them).
#: Canonical definition lives in the observability layer; re-exported
#: here for backwards compatibility with existing imports.
RECOMPUTE_STAGES = runmod.RECOMPUTE_STAGES


def _resolve_run(root: Path, run: str | None) -> Path | None:
    """Resolve a run argument (id, path, or None = latest) to a directory."""
    if run:
        as_path = Path(run)
        if as_path.is_dir():
            return as_path
        candidate = root / run
        if candidate.is_dir():
            return candidate
        return None
    runs = runmod.list_runs(root)
    return runs[0] if runs else None


def _stamp(ts: float | None) -> str:
    if not ts:
        return "?"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def _print_stage_table(stages: dict[str, dict]) -> None:
    if not stages:
        print("  (no stage spans recorded)")
        return
    total = sum(entry.get("seconds", 0.0) for entry in stages.values())
    order = [s for s in RECOMPUTE_STAGES if s in stages]
    order += sorted(s for s in stages if s not in RECOMPUTE_STAGES)
    for name in order:
        entry = stages[name]
        seconds = entry.get("seconds", 0.0)
        share = 100.0 * seconds / total if total > 0 else 0.0
        hits = entry.get("cache_hits", 0)
        hit = f", {hits} cached" if hits else ""
        print(
            f"  {name:>9}: {seconds:8.3f}s  {share:5.1f}%  "
            f"({entry.get('calls', 0)} calls{hit})"
        )


def _cmd_summary(run_dir: Path, as_json: bool = False) -> int:
    manifest = runmod.load_manifest(run_dir)
    if as_json:
        stages = (
            ((manifest.get("timings") or {}).get("stages") or {})
            if manifest
            else runmod.stage_totals(run_dir)
        )
        payload = {
            "run_id": (manifest or {}).get("run_id", run_dir.name),
            "partial": manifest is None,
            "manifest": manifest,
            "recompute_spans": _recompute_spans(stages),
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=repr))
        return 0
    if manifest is None:
        # Partial run: fall back to whatever the event stream holds.
        print(f"run: {run_dir.name}  [partial: no manifest]")
        stages = runmod.stage_totals(run_dir)
        events = sum(1 for _ in runmod.iter_events(run_dir))
        print(f"events: {events}")
        _print_stage_table(stages)
        return 0
    print(f"run:      {manifest.get('run_id', run_dir.name)}")
    print(f"status:   {manifest.get('status', '?')}")
    print(
        f"when:     {_stamp(manifest.get('created'))} -> "
        f"{_stamp(manifest.get('finished'))} "
        f"({manifest.get('wall_s', 0.0):.1f}s)"
    )
    print(f"git:      {manifest.get('git_sha') or '(unknown)'}")
    config = manifest.get("config") or {}
    if config:
        print(f"config:   {config.get('hash')} (scale={config.get('scale')})")
    engines = manifest.get("engines") or {}
    if engines and "error" not in engines:
        resolved = ", ".join(
            f"{dom}={info.get('engine')}"
            + ("" if info.get("fast_available") else " (no kernel)")
            for dom, info in sorted(engines.items())
        )
        print(f"engines:  {resolved}")
    for grid in manifest.get("grids") or []:
        print(
            f"grid:     {len(grid['apps'])} apps x {len(grid['datasets'])} datasets"
            f" x {len(grid['techniques'])} techniques = {grid['cells']} cells"
            f" (workers={grid['workers']})"
        )
    store = manifest.get("store") or {}
    for kind, counters in sorted((store.get("kinds") or {}).items()):
        print(
            f"store:    {kind:<8} hits={counters.get('hits', 0)} "
            f"misses={counters.get('misses', 0)} stores={counters.get('stores', 0)}"
            f" quarantined={counters.get('quarantined', 0)}"
            f" put_errors={counters.get('put_errors', 0)}"
        )
    print("stages:")
    _print_stage_table((manifest.get("timings") or {}).get("stages") or {})
    failures = manifest.get("failures") or []
    for failure in failures:
        print(f"FAILURE:  [{failure.get('phase')}] {failure.get('detail')}")
    if manifest.get("dropped_events"):
        print(f"dropped events: {manifest['dropped_events']}")
    return 0


def _cmd_spans(run_dir: Path, top: int, stage: str | None) -> int:
    spans = [
        event
        for event in runmod.iter_events(run_dir)
        if event.get("type") == "span"
        and (stage is None or event.get("name") == stage)
    ]
    if not spans:
        print("no spans recorded")
        return 0
    spans.sort(key=lambda e: e.get("wall_s", 0.0), reverse=True)
    print(f"{'wall':>10}  {'cpu':>10}  {'pid':>7}  name / tags")
    for event in spans[:top]:
        tags = event.get("tags") or {}
        label = " ".join(
            f"{k}={v}" for k, v in tags.items() if k != "kind"
        )
        print(
            f"{event.get('wall_s', 0.0):9.3f}s  {event.get('cpu_s', 0.0):9.3f}s  "
            f"{event.get('pid', '?'):>7}  {event.get('name')}"
            + (f"  [{label}]" if label else "")
        )
    print(f"({len(spans)} spans total)")
    return 0


def _cmd_events(run_dir: Path, stage: str | None, kind: str | None) -> int:
    count = 0
    for event in runmod.iter_events(run_dir):
        tags = event.get("tags") or {}
        if stage is not None and event.get("name") != stage:
            continue
        if kind is not None and tags.get("kind") != kind:
            continue
        label = " ".join(f"{k}={v}" for k, v in tags.items())
        wall = event.get("wall_s")
        dur = f" {wall:.3f}s" if wall is not None else ""
        print(
            f"{event.get('ts', 0.0):.6f} {event.get('type'):<5} "
            f"{event.get('name')}{dur}  {label}"
        )
        count += 1
    if count == 0:
        print("no matching events")
    return 0


#: Executed (non-cache-hit) pipeline-stage span count in a timings block.
_recompute_spans = runmod.recompute_spans


def _cmd_diff(root: Path, run_a: str, run_b: str) -> int:
    dirs = []
    for label in (run_a, run_b):
        run_dir = _resolve_run(root, label)
        if run_dir is None:
            print(f"error: unknown run {label!r} under {root}", file=sys.stderr)
            return 2
        dirs.append(run_dir)
    sides = []
    for run_dir in dirs:
        manifest = runmod.load_manifest(run_dir)
        stages = (
            ((manifest.get("timings") or {}).get("stages") or {})
            if manifest
            else runmod.stage_totals(run_dir)
        )
        store = ((manifest or {}).get("store") or {}).get("kinds") or {}
        sides.append({"dir": run_dir, "stages": stages, "store": store})
    a, b = sides
    print(f"diff: {a['dir'].name}  ->  {b['dir'].name}")
    names = [s for s in RECOMPUTE_STAGES if s in a["stages"] or s in b["stages"]]
    names += sorted(
        (set(a["stages"]) | set(b["stages"])) - set(names) - set(RECOMPUTE_STAGES)
    )
    print(f"{'stage':>10}  {'wall A':>10}  {'wall B':>10}  {'delta':>10}")
    for name in names:
        sa = a["stages"].get(name, {}).get("seconds", 0.0)
        sb = b["stages"].get(name, {}).get("seconds", 0.0)
        print(f"{name:>10}  {sa:9.3f}s  {sb:9.3f}s  {sb - sa:+9.3f}s")
    ra, rb = _recompute_spans(a["stages"]), _recompute_spans(b["stages"])
    print(f"recompute spans: {ra} -> {rb}")
    if rb == 0 and ra > 0:
        print("(run B replayed entirely from the store: zero recompute spans)")
    kinds = sorted(set(a["store"]) | set(b["store"]))
    for kind in kinds:
        ca = a["store"].get(kind, {})
        cb = b["store"].get(kind, {})
        print(
            f"store {kind:<8} hits {ca.get('hits', 0)} -> {cb.get('hits', 0)}, "
            f"misses {ca.get('misses', 0)} -> {cb.get('misses', 0)}, "
            f"stores {ca.get('stores', 0)} -> {cb.get('stores', 0)}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-status",
        description="Inspect and compare observed experiment runs.",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help="runs root directory (default: $REPRO_RUNS_DIR or ./runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_summary = sub.add_parser("summary", help="manifest overview of one run")
    p_summary.add_argument("run", nargs="?", default=None)
    p_summary.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_spans = sub.add_parser("spans", help="heaviest spans by wall time")
    p_spans.add_argument("run", nargs="?", default=None)
    p_spans.add_argument("--top", type=int, default=10)
    p_spans.add_argument("--stage", default=None, help="only spans of this name")
    p_events = sub.add_parser("events", help="dump (filtered) raw events")
    p_events.add_argument("run", nargs="?", default=None)
    p_events.add_argument("--stage", default=None, help="only events of this name")
    p_events.add_argument("--kind", default=None, help="only this tag kind")
    p_diff = sub.add_parser("diff", help="compare two runs")
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    args = parser.parse_args(argv)

    root = Path(args.runs_dir) if args.runs_dir else runmod.default_runs_dir()
    try:
        if args.command == "diff":
            return _cmd_diff(root, args.run_a, args.run_b)
        run_dir = _resolve_run(root, args.run)
        if run_dir is None:
            wanted = args.run or "(latest)"
            print(f"error: no run {wanted} under {root}", file=sys.stderr)
            return 2
        if args.command == "summary":
            return _cmd_summary(run_dir, as_json=args.json)
        if args.command == "spans":
            return _cmd_spans(run_dir, args.top, args.stage)
        return _cmd_events(run_dir, args.stage, args.kind)
    except BrokenPipeError:
        # Downstream pager/head closed early; exit quietly like repro-cache.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
