"""``repro-generate``: emit synthetic graphs to disk.

Examples::

    repro-generate sd -o sd.npz                    # a paper-dataset analog
    repro-generate sd --scale 2.0 -o sd_big.txt    # scaled, as an edge list
    repro-generate community --vertices 50000 --avg-degree 16 \\
        --exponent 1.7 --intra 0.7 -o custom.npz   # custom community graph
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.graph.io import save_edge_list, save_npz
from repro.graph.generators import DATASETS, community_graph, load_dataset
from repro.graph.properties import skew_summary

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate a dataset analog or a custom community graph."
    )
    parser.add_argument(
        "what",
        help=f"dataset name ({', '.join(sorted(DATASETS))}) or 'community'",
    )
    parser.add_argument("-o", "--output", type=Path, required=True)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--weighted", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    # Custom community-graph knobs.
    parser.add_argument("--vertices", type=int, default=10_000)
    parser.add_argument("--avg-degree", type=float, default=16.0)
    parser.add_argument("--exponent", type=float, default=1.8)
    parser.add_argument("--intra", type=float, default=0.6)
    parser.add_argument("--hub-grouping", type=float, default=0.0)
    args = parser.parse_args(argv)

    if args.what == "community":
        graph = community_graph(
            args.vertices,
            args.avg_degree,
            exponent=args.exponent,
            intra_fraction=args.intra,
            hub_grouping=args.hub_grouping,
            seed=args.seed,
        )
    elif args.what in DATASETS:
        graph = load_dataset(args.what, scale=args.scale, weighted=args.weighted)
    else:
        parser.error(
            f"unknown target {args.what!r}; pick a dataset or 'community'"
        )

    if args.output.suffix == ".npz":
        save_npz(graph, args.output)
    else:
        save_edge_list(graph, args.output)
    skew = skew_summary(graph)
    print(
        f"{args.what}: {graph.num_vertices:,} vertices / {graph.num_edges:,} "
        f"edges (hot {skew.hot_vertex_pct_out:.1f}% own "
        f"{skew.edge_coverage_pct_out:.1f}% of edges) -> {args.output}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
