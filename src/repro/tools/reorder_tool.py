"""``repro-reorder``: apply a reordering technique to a graph file.

Examples::

    repro-reorder graph.txt --technique DBG -o graph.dbg.npz
    repro-reorder graph.npz --technique HubCluster --degree in \\
        --mapping-out mapping.npy --report
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graph.properties import hot_vertices_per_block, locality_score, skew_summary
from repro.reorder import TECHNIQUES, make_technique

__all__ = ["main"]


def _load(path: Path):
    if path.suffix == ".npz":
        return load_npz(path)
    return load_edge_list(path)


def _save(graph, path: Path) -> None:
    if path.suffix == ".npz":
        save_npz(graph, path)
    else:
        save_edge_list(graph, path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reorder a graph file with a skew-aware or "
        "structure-aware technique."
    )
    parser.add_argument("input", type=Path, help="edge-list (.txt) or .npz graph")
    parser.add_argument(
        "--technique",
        default="DBG",
        help=f"one of {sorted(TECHNIQUES)} or RCB-<n> (default: DBG)",
    )
    parser.add_argument(
        "--degree",
        default="out",
        choices=("out", "in", "both"),
        help="degree kind driving skew-aware techniques (paper Table VIII)",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output graph path (.npz or edge list; default: <input>.<tech>.npz)",
    )
    parser.add_argument(
        "--mapping-out", type=Path, default=None,
        help="also save the old->new vertex mapping as .npy",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print skew/packing/locality before and after",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check graph integrity before reordering (fails on corruption)",
    )
    args = parser.parse_args(argv)

    if not args.input.exists():
        parser.error(f"no such file: {args.input}")
    try:
        technique = make_technique(args.technique, args.degree)
    except KeyError as exc:
        parser.error(str(exc))

    graph = _load(args.input)
    if args.validate:
        from repro.graph.validate import validate_graph

        validation = validate_graph(graph)
        for warning in validation.warnings:
            print(f"warning: {warning}")
        validation.raise_if_invalid()
    result = technique.apply(graph)

    output = args.output
    if output is None:
        output = args.input.with_suffix(f".{technique.name.lower()}.npz")
    _save(result.graph, output)
    print(
        f"{technique.name}: {graph.num_vertices:,} vertices / "
        f"{graph.num_edges:,} edges reordered in "
        f"{result.total_seconds * 1e3:.1f} ms -> {output}"
    )
    if args.mapping_out:
        np.save(args.mapping_out, result.mapping)
        print(f"mapping -> {args.mapping_out}")

    if args.report:
        for label, g in (("before", graph), ("after", result.graph)):
            skew = skew_summary(g)
            print(
                f"  {label:6s} hot%={skew.hot_vertex_pct_out:5.1f} "
                f"coverage%={skew.edge_coverage_pct_out:5.1f} "
                f"hot/block={hot_vertices_per_block(g):4.2f} "
                f"locality={locality_score(g, 64):.3f}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
