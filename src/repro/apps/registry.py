"""Name-based construction of applications (paper Table VII order)."""

from __future__ import annotations

from repro.apps.base import GraphApp
from repro.apps.bc import BetweennessCentrality
from repro.apps.pagerank import PageRank
from repro.apps.pagerank_delta import PageRankDelta
from repro.apps.radii import Radii
from repro.apps.sssp import SSSP
from repro.apps.components import ConnectedComponents
from repro.apps.kcore import KCore
from repro.apps.bfs import BFS

__all__ = ["APPS", "APP_ORDER", "EXTENSION_APPS", "make_app"]

#: Application classes keyed by the paper's abbreviations.
APPS: dict[str, type[GraphApp]] = {
    "BC": BetweennessCentrality,
    "SSSP": SSSP,
    "PR": PageRank,
    "PRD": PageRankDelta,
    "Radii": Radii,
}

#: Figure order used throughout the paper's evaluation.
APP_ORDER = ["BC", "SSSP", "PR", "PRD", "Radii"]

#: Extra workloads beyond the paper's suite (kept out of the paper-shaped
#: figures; used by the extended-comparison benches).
EXTENSION_APPS = ["CC", "KCore", "BFS"]
APPS["CC"] = ConnectedComponents
APPS["KCore"] = KCore
APPS["BFS"] = BFS


def make_app(name: str, **kwargs) -> GraphApp:
    """Instantiate an application by its paper abbreviation."""
    if name not in APPS:
        raise KeyError(f"unknown app {name!r}; known: {sorted(APPS)}")
    return APPS[name](**kwargs)
