"""Shared application machinery: plans, super-step tracing, core layout.

The cache study needs, for every (application, dataset, ordering) triple,
the memory-access stream of a *representative super-step* (Section VI-B
measures steady-state MPKI).  Re-running each algorithm for every ordering
would be wasteful — the algorithm's logical behaviour (which vertices are
active when) is identical under relabelling.  So an application is run
once per graph to record a :class:`TracePlan`, and the plan is *remapped*
through each reordering's permutation before tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.graph.csr import Graph
from repro.framework.fasttrace import ragged_gather
from repro.framework.trace import AddressSpace, AppTrace, Region, TraceBuilder

__all__ = ["TracePlan", "SuperStep", "GraphApp", "core_of_vertices"]

#: Simulated machine: 2 sockets x 20 cores (paper Section V-B).
NUM_CORES = 40

#: Bytes per CSR offset entry and per edge entry (paper Table VIII notes
#: 4 bytes to encode a vertex and 8 bytes per edge).
VERTEX_ENTRY_BYTES = 4
EDGE_ENTRY_BYTES = 8


#: Accesses a core issues before the trace switches to the next core's
#: stream.  The trace models all cores progressing at equal rates,
#: interleaved at this quantum: fine enough that write-shared blocks
#: ping-pong between cores (the paper's Fig. 9 coherence behaviour),
#: coarse enough that each core's stream stays locally sequential.
INTERLEAVE_QUANTUM = 128


def core_of_vertices(ids: np.ndarray, num_vertices: int, num_cores: int = NUM_CORES) -> np.ndarray:
    """Static block partition of the vertex range over cores.

    Mirrors OpenMP static scheduling of the vertex loop, which is what pins
    coherence behaviour in the paper's push-mode analysis (Section VI-C).
    """
    return np.asarray(ids, dtype=np.int64) * num_cores // max(num_vertices, 1)


@dataclass(frozen=True)
class SuperStep:
    """One traced iteration: which vertices drive it and in which direction."""

    direction: str  #: "pull" or "push"
    #: Active vertex IDs; ``None`` means all vertices (dense iteration).
    active: np.ndarray | None
    #: Edges this super-step traverses (for work accounting).
    edges: int
    #: Fraction of push-mode property accesses that actually write.  PRD
    #: pushes unconditionally (1.0); SSSP writes only when it finds a
    #: shorter path (paper Section VI-C), recorded from the real run.
    write_fraction: float = 1.0


@dataclass(frozen=True)
class TracePlan:
    """Logical execution record of one application run on one graph."""

    app: str
    supersteps: tuple[SuperStep, ...]
    #: Index of the representative super-step to trace.
    representative: int
    #: Total edges traversed across the whole run (all supersteps, all
    #: traversals/roots), used to extrapolate from the traced step.
    total_edges: int
    detail: dict = field(default_factory=dict)

    @property
    def traced(self) -> SuperStep:
        return self.supersteps[self.representative]

    @property
    def multiplier(self) -> float:
        """Whole-run work relative to the traced super-step."""
        traced_edges = max(self.traced.edges, 1)
        return self.total_edges / traced_edges

    def remap(self, mapping: np.ndarray) -> "TracePlan":
        """Express the plan in the vertex IDs of a relabelled graph."""
        mapping = np.asarray(mapping)
        steps = tuple(
            replace(
                step,
                active=None if step.active is None else np.sort(mapping[step.active]),
            )
            for step in self.supersteps
        )
        return replace(self, supersteps=steps)


class GraphApp:
    """Base class for the five evaluated applications."""

    name: str = "app"
    #: "pull", "push" or "pull-push" (paper Table VIII).
    computation: str = "pull"
    #: Bytes per element of the irregularly-accessed property (Table VIII).
    irregular_property_bytes: int = 8
    #: Total per-vertex property bytes (Table VIII), for footprint accounting.
    total_property_bytes: int = 8
    #: Degree kind the paper uses when reordering for this app (Table VIII).
    reorder_degree_kind: str = "out"
    #: Instructions per traversed edge / active vertex in the traced loop.
    #: Calibrated so baseline L1 MPKI lands in the paper's >100 regime for
    #: the large datasets (Fig. 8: roughly 5-10 instructions per memory
    #: access in these tight traversal kernels).
    instructions_per_edge: float = 6.0
    instructions_per_vertex: float = 10.0

    # -- to override ------------------------------------------------------
    def run(self, graph: Graph, **kwargs) -> dict:
        """Execute the algorithm; returns results incl. a ``plan``."""
        raise NotImplementedError

    def plan(self, graph: Graph, **kwargs) -> TracePlan:
        """Run and return just the logical execution plan."""
        return self.run(graph, **kwargs)["plan"]

    # -- shared tracing ----------------------------------------------------
    def trace(self, graph: Graph, plan: TracePlan) -> AppTrace:
        """Memory trace of the plan's representative super-step on ``graph``."""
        step = plan.traced
        builder = TraceBuilder()
        space = AddressSpace()
        vertex_region = space.region("vertex", graph.num_vertices + 1, VERTEX_ENTRY_BYTES)
        edge_region = space.region("edge", graph.num_edges, EDGE_ENTRY_BYTES)
        prop_region = space.region(
            "property", graph.num_vertices, self.irregular_property_bytes
        )
        out_region = space.region("out_property", graph.num_vertices, 8)
        weight_region = (
            space.region("weights", graph.num_edges, 8) if graph.is_weighted else None
        )
        if step.direction == "pull":
            edges = self._trace_pull(
                builder, graph, step, vertex_region, edge_region, prop_region, out_region
            )
        else:
            edges = self._trace_push(
                builder,
                graph,
                step,
                vertex_region,
                edge_region,
                prop_region,
                out_region,
                weight_region,
            )
        active_count = (
            graph.num_vertices if step.active is None else int(step.active.size)
        )
        instructions = int(
            self.instructions_per_edge * edges
            + self.instructions_per_vertex * active_count
        )
        return AppTrace(
            app=self.name,
            trace=builder.build(),
            instructions=instructions,
            superstep_multiplier=plan.multiplier,
            detail={"direction": step.direction, "edges": edges, "active": active_count},
        )

    def hot_property_blocks(self, graph: Graph, threshold: float | None = None) -> np.ndarray:
        """Cache blocks of the irregular property holding *hot* vertices.

        This is the static classification skew-aware replacement policies
        (``grasp``) consume: the same above-average-degree cut the
        skew-aware reordering techniques use
        (:func:`repro.graph.properties.hot_mask`, evaluated with this
        app's ``reorder_degree_kind``), projected onto the block IDs of
        the irregular property region.  Call it on the *relabelled*
        graph — block IDs are positions in the simulated address space,
        which the permutation changes.

        The address-space reconstruction mirrors :meth:`trace` exactly
        (vertex, edge, then property region, in that order); the regions
        allocated after the property region cannot shift its base.
        """
        from repro.graph.properties import hot_mask

        space = AddressSpace()
        space.region("vertex", graph.num_vertices + 1, VERTEX_ENTRY_BYTES)
        space.region("edge", graph.num_edges, EDGE_ENTRY_BYTES)
        prop_region = space.region(
            "property", graph.num_vertices, self.irregular_property_bytes
        )
        hot = hot_mask(graph, kind=self.reorder_degree_kind, threshold=threshold)
        return np.unique(prop_region.block_of(np.flatnonzero(hot)))

    def trace_streaming(
        self,
        graph: Graph,
        plan: TracePlan,
        chunk_edges: int | None = None,
        engine: str | None = None,
        threads: int | None = None,
    ) -> AppTrace:
        """Streaming variant of :meth:`trace` for the fused pipeline stage.

        The returned ``AppTrace`` wraps a
        :class:`~repro.framework.trace.StreamingTrace` that yields the
        exact run sequence of the monolithic build in bounded chunks —
        see :mod:`repro.apps.streaming` for the equivalence argument.
        """
        from repro.apps import streaming

        kwargs = {} if chunk_edges is None else {"chunk_edges": chunk_edges}
        return streaming.streaming_trace(
            self, graph, plan, engine=engine, threads=threads, **kwargs
        )

    # -- internals ---------------------------------------------------------
    def _gather(self, graph: Graph, active: np.ndarray | None, direction: str):
        """Edge endpoints, edge-array positions and per-edge owners for the
        super-step, as ``(ids, lengths, positions, others, repeats)``."""
        offsets = graph.in_offsets if direction == "pull" else graph.out_offsets
        endpoints = graph.in_sources if direction == "pull" else graph.out_targets
        if active is None:
            ids = np.arange(graph.num_vertices, dtype=np.int64)
        else:
            ids = np.asarray(active, dtype=np.int64)
        lengths, positions, others, repeats = ragged_gather(offsets, endpoints, ids)
        return ids, lengths, positions, others, repeats

    @staticmethod
    def _interleave_offsets(cores_per_edge: np.ndarray) -> np.ndarray:
        """Time-key offsets realizing the per-core quantum interleave.

        ``cores_per_edge`` is non-decreasing (edges are gathered in vertex
        order and cores own contiguous vertex ranges).  Each core's k-th
        quantum of ``INTERLEAVE_QUANTUM`` accesses is shifted to global
        time slice k, so all cores progress in lock-step.
        """
        n = cores_per_edge.size
        if n == 0:
            return np.zeros(0)
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = cores_per_edge[1:] != cores_per_edge[:-1]
        core_start = np.maximum.accumulate(np.where(change, np.arange(n), 0))
        local = np.arange(n) - core_start
        quantum = local // INTERLEAVE_QUANTUM
        return quantum.astype(np.float64) * (2.0 * n)

    @staticmethod
    def _add_stream_block_transitions(
        builder: TraceBuilder,
        region: Region,
        positions: np.ndarray,
        keys: np.ndarray,
        write=False,
        core=0,
    ) -> None:
        """Emit a sequential stream at block granularity.

        Only block transitions are recorded: the elided accesses are
        guaranteed L1 hits (the stream never leaves its current block
        between them) and are accounted for in the instruction budget
        instead.
        """
        if positions.size == 0:
            return
        blocks = region.block_of(positions)
        first = np.empty(positions.size, dtype=bool)
        first[0] = True
        first[1:] = blocks[1:] != blocks[:-1]
        idx = np.flatnonzero(first)
        core_arr = core[idx] if isinstance(core, np.ndarray) else core
        builder.add(region, positions[idx], keys[idx], write=write, core=core_arr)

    def _trace_pull(
        self, builder, graph, step, vertex_region, edge_region, prop_region, out_region
    ) -> int:
        """Pull super-step: stream in-edges, read source properties, write
        one output per destination."""
        ids, lengths, positions, srcs, dst_per_edge = self._gather(
            graph, step.active, "pull"
        )
        edges = int(positions.size)
        dst_core_per_edge = core_of_vertices(dst_per_edge, graph.num_vertices)
        offsets = self._interleave_offsets(dst_core_per_edge)
        edge_keys = np.arange(edges, dtype=np.float64) + offsets
        # Edge array: streamed just ahead of the property read it feeds.
        self._add_stream_block_transitions(
            builder, edge_region, positions, edge_keys - 0.5, core=dst_core_per_edge
        )
        # Property array: the irregular reads, one per in-edge.
        builder.add(prop_region, srcs, edge_keys, core=dst_core_per_edge)
        # Vertex array reads and the per-destination output writes, pinned to
        # each destination's first/last edge position in time.
        first_edge = np.zeros(ids.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=first_edge[1:])
        last_edge = first_edge + np.maximum(lengths - 1, 0)
        if edges:
            first_off = offsets[np.minimum(first_edge, edges - 1)]
            last_off = offsets[np.minimum(last_edge, edges - 1)]
        else:
            first_off = last_off = np.zeros(ids.size)
        dst_cores = core_of_vertices(ids, graph.num_vertices)
        self._add_stream_block_transitions(
            builder, vertex_region, ids, first_edge - 0.7 + first_off, core=dst_cores
        )
        self._add_stream_block_transitions(
            builder,
            out_region,
            ids,
            last_edge + 0.3 + last_off,
            write=True,
            core=dst_cores,
        )
        return edges

    def _trace_push(
        self,
        builder,
        graph,
        step,
        vertex_region,
        edge_region,
        prop_region,
        out_region,
        weight_region,
    ) -> int:
        """Push super-step: stream out-edges, write destination properties."""
        ids, lengths, positions, dsts, src_per_edge = self._gather(
            graph, step.active, "push"
        )
        edges = int(positions.size)
        src_core_per_edge = core_of_vertices(src_per_edge, graph.num_vertices)
        offsets = self._interleave_offsets(src_core_per_edge)
        edge_keys = np.arange(edges, dtype=np.float64) + offsets
        self._add_stream_block_transitions(
            builder, edge_region, positions, edge_keys - 0.5, core=src_core_per_edge
        )
        if weight_region is not None:
            self._add_stream_block_transitions(
                builder, weight_region, positions, edge_keys - 0.4, core=src_core_per_edge
            )
        # The irregular accesses that generate coherence traffic (Sec. VI-C):
        # every push reads the destination property; only the successful
        # fraction writes it (always, for unconditional apps like PRD).
        if step.write_fraction >= 1.0:
            write_mask: np.ndarray | bool = True
        else:
            rng = np.random.default_rng(edges)
            write_mask = rng.random(edges) < step.write_fraction
        builder.add(prop_region, dsts, edge_keys, write=write_mask, core=src_core_per_edge)
        # Vertex array + source property read per active vertex.
        first_edge = np.zeros(ids.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=first_edge[1:])
        if edges:
            first_off = offsets[np.minimum(first_edge, edges - 1)]
        else:
            first_off = np.zeros(ids.size)
        src_cores = core_of_vertices(ids, graph.num_vertices)
        self._add_stream_block_transitions(
            builder, vertex_region, ids, first_edge - 0.7 + first_off, core=src_cores
        )
        self._add_stream_block_transitions(
            builder, out_region, ids, first_edge - 0.6 + first_off, core=src_cores
        )
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
