"""PageRank-Delta (push-only), after Ligra's PageRankDelta example.

Only vertices whose rank changed by more than a threshold stay active, and
active vertices *push* their rank delta to all out-neighbours.  The paper
singles PRD out as the workload where reordering helps least: every push
is an unconditional irregular write, so most of the off-chip misses that
reordering removes come back as on-chip coherence snoops (Section VI-C,
Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.framework.vertex_subset import VertexSubset
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["PageRankDelta"]


class PageRankDelta(GraphApp):
    """Delta-based PageRank: active set shrinks as ranks converge."""

    name = "PRD"
    computation = "push"
    irregular_property_bytes = 8
    total_property_bytes = 20
    reorder_degree_kind = "in"

    def __init__(
        self,
        damping: float = 0.85,
        epsilon: float = 1e-2,
        max_iterations: int = 50,
    ) -> None:
        self.damping = damping
        self.epsilon = epsilon
        self.max_iterations = max_iterations

    def run(self, graph: Graph, **kwargs) -> dict:
        """Compute ranks; returns ``{"ranks", "iterations", "plan"}``."""
        n = graph.num_vertices
        if n == 0:
            plan = TracePlan(self.name, (SuperStep("push", None, 0),), 0, 0)
            return {"ranks": np.empty(0), "iterations": 0, "plan": plan}
        out_deg = graph.out_degrees().astype(np.float64)
        safe_out = np.maximum(out_deg, 1.0)
        # Geometric-series PageRank: rank = sum_t d^t M^t base, pushed
        # incrementally.  delta_0 is the base rank everyone starts from.
        delta = np.full(n, (1.0 - self.damping) / n)
        ranks = delta.copy()
        frontier = VertexSubset.full(n)
        dst_all = graph.out_targets
        src_all = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())

        supersteps: list[SuperStep] = []
        total_edges = 0
        iterations = 0
        for iteration in range(self.max_iterations):
            active = frontier.ids()
            if active.size == 0:
                break
            edges = int(np.diff(graph.out_offsets)[active].sum())
            supersteps.append(SuperStep("push", active, edges))
            total_edges += edges
            iterations += 1

            active_mask = frontier.mask()
            keep = active_mask[src_all]
            pushed = np.bincount(
                dst_all[keep],
                weights=(delta / safe_out)[src_all[keep]],
                minlength=n,
            )
            new_delta = self.damping * pushed
            ranks = ranks + new_delta
            # A vertex stays active while its accumulated change is still a
            # meaningful fraction of its rank (Ligra's epsilon rule).
            threshold = self.epsilon * np.maximum(ranks, 1e-12)
            next_ids = np.flatnonzero(np.abs(new_delta) > threshold)
            delta = new_delta
            frontier = VertexSubset(n, ids=next_ids)

        if not supersteps:
            supersteps.append(SuperStep("push", np.arange(n), graph.num_edges))
        # Representative super-step: the first iteration where the active set
        # has started to shrink (steady-state behaviour), else the largest.
        sizes = [s.edges for s in supersteps]
        representative = 1 if len(supersteps) > 1 else 0
        if sizes[representative] == 0:
            representative = int(np.argmax(sizes))
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=representative,
            total_edges=max(total_edges, 1),
            detail={"iterations": iterations},
        )
        return {"ranks": ranks, "iterations": iterations, "plan": plan}
