"""The paper's five graph applications (Table VII), on the Ligra-like engine.

===========  ==============  ======================  ====================
Application  Computation     Irregular property      Reordering degree
===========  ==============  ======================  ====================
BC           pull-push       8 B (counts/deps)       out
SSSP         push-only       8 B (distances)         in
PR           pull-only       12 B (rank + degree)    out
PRD          push-only       8 B (delta sums)        in
Radii        pull-push       8 B (visit masks)       out
===========  ==============  ======================  ====================

(Reproduces the paper's Table VIII.)  Each application offers ``run`` (the
actual computation, for correctness), ``plan`` (a logical execution plan
recorded from a run — frontiers, iteration counts) and ``trace`` (the
memory-access trace of a representative super-step, used by the cache
simulator and performance model).  Plans are expressed in vertex IDs and
can be remapped through a reordering, so a single run of the algorithm
serves every ordering of the same graph.
"""

from repro.apps.base import GraphApp, TracePlan
from repro.apps.pagerank import PageRank
from repro.apps.pagerank_delta import PageRankDelta
from repro.apps.sssp import SSSP
from repro.apps.bc import BetweennessCentrality
from repro.apps.radii import Radii
from repro.apps.components import ConnectedComponents
from repro.apps.kcore import KCore
from repro.apps.bfs import BFS
from repro.apps.registry import APPS, EXTENSION_APPS, make_app

__all__ = [
    "GraphApp",
    "TracePlan",
    "PageRank",
    "PageRankDelta",
    "SSSP",
    "BetweennessCentrality",
    "Radii",
    "APPS",
    "EXTENSION_APPS",
    "ConnectedComponents",
    "KCore",
    "BFS",
    "make_app",
]
