"""Direction-optimizing Breadth-First Search (extension application).

BFS is the workload direction-optimizing traversal was invented for
(Beamer et al., cited via Ligra): small frontiers push, large frontiers
pull, and the engine's threshold heuristic decides per level.  Unlike the
five paper apps — which are pull-only, push-only, or BFS-*kernels* inside
a bigger computation — plain BFS exposes the raw switch, so its recorded
plan is the one whose super-steps genuinely alternate directions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.framework.engine import edge_map
from repro.framework.vertex_subset import VertexSubset
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["BFS"]


class BFS(GraphApp):
    """Level-synchronous BFS with automatic push/pull switching."""

    name = "BFS"
    computation = "pull-push"
    irregular_property_bytes = 8  # the parent/level array
    total_property_bytes = 8
    reorder_degree_kind = "out"

    def run(self, graph: Graph, root: int = 0, **kwargs) -> dict:
        """Returns ``{"levels", "parents", "rounds", "plan"}``.

        ``levels[v]`` is the hop distance from ``root`` (−1 when
        unreachable); ``parents[v]`` is a BFS-tree parent (−1 for the root
        and unreachable vertices).
        """
        n = graph.num_vertices
        levels = np.full(n, -1, dtype=np.int64)
        parents = np.full(n, -1, dtype=np.int64)
        levels[root] = 0
        frontier = VertexSubset.single(n, root)

        supersteps: list[SuperStep] = []
        total_edges = 0
        depth = 0
        while not frontier.is_empty():
            active = frontier.ids()
            edges = int(np.diff(graph.out_offsets)[active].sum())

            def update(src, dst, weights):
                fresh = levels[dst] == -1
                # First writer wins within the batch, like Ligra's CAS.
                candidates = np.flatnonzero(fresh)
                _, first_of = np.unique(dst[candidates], return_index=True)
                first_idx = np.zeros(dst.size, dtype=bool)
                first_idx[candidates[first_of]] = True
                levels[dst[first_idx]] = depth + 1
                parents[dst[first_idx]] = src[first_idx]
                return first_idx

            def cond(dst):
                return levels[dst] == -1

            result = edge_map(graph, frontier, update, cond=cond, direction="auto")
            if edges:
                supersteps.append(SuperStep(result.direction, active, edges))
                total_edges += edges
            frontier = result.frontier
            depth += 1

        if not supersteps:
            supersteps.append(SuperStep("push", np.array([root]), 0))
        representative = int(np.argmax([s.edges for s in supersteps]))
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=representative,
            total_edges=max(total_edges, 1),
            detail={"root": root, "rounds": depth},
        )
        return {
            "levels": levels,
            "parents": parents,
            "rounds": depth,
            "plan": plan,
        }
