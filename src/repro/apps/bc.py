"""Betweenness Centrality from a root, after Ligra's BC example.

A BFS forward phase counts shortest paths per vertex level by level; a
backward phase accumulates dependency scores.  Ligra runs the forward
phase with direction-optimizing (pull-push) traversal, which is what the
paper's Table VIII records.  The traced representative super-step is the
largest BFS level — the dense mid-BFS iteration that dominates runtime on
small-diameter power-law graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["BetweennessCentrality"]


class BetweennessCentrality(GraphApp):
    """Brandes-style single-source betweenness contributions."""

    name = "BC"
    computation = "pull-push"
    irregular_property_bytes = 8
    total_property_bytes = 17
    reorder_degree_kind = "out"

    def run(self, graph: Graph, root: int = 0, **kwargs) -> dict:
        """Forward + backward pass from ``root``.

        Returns ``{"dependencies", "num_paths", "levels", "plan"}`` where
        ``dependencies`` are the per-vertex dependency scores (the root's
        contribution to betweenness centrality of every vertex).
        """
        n = graph.num_vertices
        level = np.full(n, -1, dtype=np.int64)
        num_paths = np.zeros(n)
        level[root] = 0
        num_paths[root] = 1.0

        src_all = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())
        dst_all = graph.out_targets.astype(np.int64)

        frontiers: list[np.ndarray] = [np.array([root], dtype=np.int64)]
        supersteps: list[SuperStep] = []
        total_edges = 0
        depth = 0
        while True:
            active = frontiers[-1]
            active_mask = np.zeros(n, dtype=bool)
            active_mask[active] = True
            edges = int(np.diff(graph.out_offsets)[active].sum())
            if edges:
                supersteps.append(SuperStep("pull", active, edges))
                total_edges += edges
            keep = active_mask[src_all]
            src, dst = src_all[keep], dst_all[keep]
            # Propagate path counts to unvisited destinations.
            new_mask = level[dst] == -1
            if not new_mask.any():
                break
            contrib = np.bincount(dst[new_mask], weights=num_paths[src[new_mask]], minlength=n)
            discovered = np.flatnonzero((level == -1) & (contrib > 0))
            if discovered.size == 0:
                break
            depth += 1
            level[discovered] = depth
            num_paths[discovered] = contrib[discovered]
            frontiers.append(discovered)

        # Backward phase: accumulate dependencies level by level.
        dependency = np.zeros(n)
        for current in reversed(frontiers[:-1]):
            # Tree edges from this level to the next one.
            src_lvl = level[src_all]
            dst_lvl = level[dst_all]
            on_tree = (src_lvl >= 0) & (dst_lvl == src_lvl + 1)
            lvl = level[current[0]] if current.size else -1
            sel = on_tree & (src_lvl == lvl)
            s, d = src_all[sel], dst_all[sel]
            if s.size:
                shares = (num_paths[s] / np.maximum(num_paths[d], 1e-300)) * (
                    1.0 + dependency[d]
                )
                np.add.at(dependency, s, shares)
            total_edges += int(s.size)

        if not supersteps:
            supersteps.append(SuperStep("pull", np.array([root]), 0))
        representative = int(np.argmax([s.edges for s in supersteps]))
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=representative,
            total_edges=max(total_edges, 1),
            detail={"root": root, "depth": depth},
        )
        return {
            "dependencies": dependency,
            "num_paths": num_paths,
            "levels": level,
            "plan": plan,
        }
