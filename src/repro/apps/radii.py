"""Radii estimation via simultaneous multi-BFS, after Ligra's Radii example.

Runs BFS from a sample of up to 64 source vertices at once, carrying one
bit per source in a 64-bit visited mask per vertex (Magnien et al.'s
technique, cited by the paper's Table VII).  A vertex's estimated radius is
the last round in which its mask grew — i.e. the distance to the farthest
sampled source that reaches it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["Radii"]


class Radii(GraphApp):
    """Parallel multi-BFS radius estimation with 64-bit visit masks."""

    name = "Radii"
    computation = "pull-push"
    irregular_property_bytes = 8
    total_property_bytes = 20
    reorder_degree_kind = "out"

    def __init__(self, num_samples: int = 64, seed: int = 7) -> None:
        if not 1 <= num_samples <= 64:
            raise ValueError("num_samples must be in [1, 64]")
        self.num_samples = num_samples
        self.seed = seed

    def run(self, graph: Graph, **kwargs) -> dict:
        """Estimate radii; returns ``{"radii", "rounds", "plan"}``.

        ``radii[v]`` is the max distance from any sampled source to ``v``
        (−1 if no sampled source reaches ``v``).
        """
        n = graph.num_vertices
        rng = np.random.default_rng(self.seed)
        k = min(self.num_samples, n)
        samples = rng.choice(n, size=k, replace=False)

        visited = np.zeros(n, dtype=np.uint64)
        visited[samples] |= np.uint64(1) << np.arange(k, dtype=np.uint64)
        radii = np.full(n, -1, dtype=np.int64)
        radii[samples] = 0

        dst_index = np.repeat(np.arange(n, dtype=np.int64), graph.in_degrees())
        src_index = graph.in_sources.astype(np.int64)

        supersteps: list[SuperStep] = []
        total_edges = 0
        rounds = 0
        while True:
            # Dense pull: every vertex ORs in the masks of its in-neighbours.
            gathered = visited[src_index]
            pulled = np.zeros(n, dtype=np.uint64)
            np.bitwise_or.at(pulled, dst_index, gathered)
            new_visited = visited | pulled
            changed = new_visited != visited
            if not changed.any():
                break
            rounds += 1
            radii[changed] = rounds
            visited = new_visited
            supersteps.append(SuperStep("pull", None, graph.num_edges))
            total_edges += graph.num_edges

        if not supersteps:
            supersteps.append(SuperStep("pull", None, graph.num_edges))
            total_edges = graph.num_edges
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=0,
            total_edges=max(total_edges, 1),
            detail={"rounds": rounds, "samples": samples},
        )
        return {"radii": radii, "rounds": rounds, "plan": plan}
