"""PageRank (pull-based), as in Ligra's PageRank example.

Every iteration pulls the previous ranks of all in-neighbours of every
vertex — the canonical all-active, pull-only workload of the paper's cache
study (Fig. 8 uses PR as the representative application).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["PageRank"]


class PageRank(GraphApp):
    """Iterative PageRank with a damping factor, until L1 convergence."""

    name = "PR"
    computation = "pull"
    # Per in-edge, PR reads the source's rank contribution and its
    # out-degree: 12 bytes of irregularly-accessed state (paper Table VIII).
    irregular_property_bytes = 12
    total_property_bytes = 20
    reorder_degree_kind = "out"

    def __init__(
        self,
        damping: float = 0.85,
        tolerance: float = 1e-7,
        max_iterations: int = 100,
    ) -> None:
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def run(self, graph: Graph, **kwargs) -> dict:
        """Compute ranks; returns ``{"ranks", "iterations", "plan"}``."""
        n = graph.num_vertices
        if n == 0:
            plan = TracePlan(self.name, (SuperStep("pull", None, 0),), 0, 0)
            return {"ranks": np.empty(0), "iterations": 0, "plan": plan}
        out_deg = graph.out_degrees().astype(np.float64)
        safe_out = np.maximum(out_deg, 1.0)
        ranks = np.full(n, 1.0 / n)
        dst_index = np.repeat(
            np.arange(n, dtype=np.int64), graph.in_degrees()
        )
        iterations = 0
        for _ in range(self.max_iterations):
            contrib = ranks / safe_out
            pulled = np.bincount(
                dst_index, weights=contrib[graph.in_sources], minlength=n
            )
            # Dangling mass keeps the ranks a distribution.
            dangling = ranks[out_deg == 0].sum()
            new_ranks = (1.0 - self.damping) / n + self.damping * (
                pulled + dangling / n
            )
            iterations += 1
            delta = np.abs(new_ranks - ranks).sum()
            ranks = new_ranks
            if delta < self.tolerance:
                break
        step = SuperStep("pull", None, graph.num_edges)
        plan = TracePlan(
            app=self.name,
            supersteps=(step,),
            representative=0,
            total_edges=graph.num_edges * iterations,
            detail={"iterations": iterations},
        )
        return {"ranks": ranks, "iterations": iterations, "plan": plan}
