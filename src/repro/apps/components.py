"""Connected Components via label propagation (extension application).

Not part of the paper's five-app suite, but a standard Ligra workload used
by the lightweight-reordering study the paper builds on (Balaji & Lucia,
IISWC'18).  Included to let the harness evaluate reordering on an
all-active, pull-style kernel whose per-vertex property is a plain label.

Computes *weakly* connected components: labels propagate across edges in
both directions until a fixed point, each vertex ending with the minimum
vertex ID of its component.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["ConnectedComponents"]


class ConnectedComponents(GraphApp):
    """Min-label propagation to a fixed point."""

    name = "CC"
    computation = "pull"
    irregular_property_bytes = 8
    total_property_bytes = 8
    reorder_degree_kind = "out"

    def __init__(self, max_iterations: int = 1000) -> None:
        self.max_iterations = max_iterations

    def run(self, graph: Graph, **kwargs) -> dict:
        """Returns ``{"labels", "num_components", "iterations", "plan"}``."""
        n = graph.num_vertices
        if n == 0:
            plan = TracePlan(self.name, (SuperStep("pull", None, 0),), 0, 0)
            return {
                "labels": np.empty(0, dtype=np.int64),
                "num_components": 0,
                "iterations": 0,
                "plan": plan,
            }
        labels = np.arange(n, dtype=np.int64)
        src, dst = graph.edge_array()
        iterations = 0
        supersteps: list[SuperStep] = []
        total_edges = 0
        for _ in range(self.max_iterations):
            new_labels = labels.copy()
            # Propagate the minimum label across each edge, both ways.
            np.minimum.at(new_labels, dst, labels[src])
            np.minimum.at(new_labels, src, labels[dst])
            iterations += 1
            supersteps.append(SuperStep("pull", None, graph.num_edges))
            total_edges += graph.num_edges
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=0,
            total_edges=max(total_edges, 1),
            detail={"iterations": iterations},
        )
        return {
            "labels": labels,
            "num_components": int(np.unique(labels).size),
            "iterations": iterations,
            "plan": plan,
        }
