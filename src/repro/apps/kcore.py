"""k-core decomposition by iterative peeling (extension application).

Another common graph-analytics kernel with a different access signature
from the paper's five: work is dominated by *removal waves* whose frontier
shrinks as k grows, generating sparse push-style updates (degree
decrements on the neighbours of peeled vertices).

Coreness is computed over the undirected structure (degree = in + out),
matching ``networkx.core_number`` on the undirected projection when the
graph has no parallel edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["KCore"]


class KCore(GraphApp):
    """Peeling-based coreness computation."""

    name = "KCore"
    computation = "push"
    irregular_property_bytes = 8
    total_property_bytes = 8
    reorder_degree_kind = "in"

    def run(self, graph: Graph, **kwargs) -> dict:
        """Returns ``{"coreness", "max_core", "rounds", "plan"}``."""
        n = graph.num_vertices
        if n == 0:
            plan = TracePlan(self.name, (SuperStep("push", None, 0),), 0, 0)
            return {
                "coreness": np.empty(0, dtype=np.int64),
                "max_core": 0,
                "rounds": 0,
                "plan": plan,
            }
        degree = graph.degrees("both").copy()
        coreness = np.zeros(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        src, dst = graph.edge_array()

        supersteps: list[SuperStep] = []
        total_edges = 0
        rounds = 0
        k = 0
        while alive.any():
            peel = alive & (degree <= k)
            if not peel.any():
                k += 1
                continue
            peeled = np.flatnonzero(peel)
            coreness[peeled] = k
            alive[peeled] = False
            rounds += 1
            # Decrement the undirected degree of every still-alive
            # neighbour of a peeled vertex (both edge directions).
            removal_mask = peel[src] | peel[dst]
            edges_touched = int(removal_mask.sum())
            if edges_touched:
                s, d = src[removal_mask], dst[removal_mask]
                np.subtract.at(degree, s, 1)
                np.subtract.at(degree, d, 1)
                supersteps.append(SuperStep("push", peeled, edges_touched))
                total_edges += edges_touched
            else:
                supersteps.append(SuperStep("push", peeled, 0))

        representative = int(np.argmax([s.edges for s in supersteps]))
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=representative,
            total_edges=max(total_edges, 1),
            detail={"rounds": rounds, "max_core": int(coreness.max())},
        )
        return {
            "coreness": coreness,
            "max_core": int(coreness.max()),
            "rounds": rounds,
            "plan": plan,
        }
