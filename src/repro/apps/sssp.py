"""Single-Source Shortest Paths via frontier-based Bellman–Ford (push-only).

Ligra's SSSP relaxes the out-edges of the current frontier; a vertex joins
the next frontier when its distance improves.  The push-mode irregular
writes make SSSP one of the paper's two coherence-sensitive applications
(Section VI-C), though with far fewer writes than PageRank-Delta because an
update is pushed only when a shorter path is found.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.framework.engine import edge_map
from repro.framework.vertex_subset import VertexSubset
from repro.apps.base import GraphApp, SuperStep, TracePlan

__all__ = ["SSSP"]


class SSSP(GraphApp):
    """Bellman–Ford from a root on a weighted graph."""

    name = "SSSP"
    computation = "push"
    irregular_property_bytes = 8
    total_property_bytes = 8
    reorder_degree_kind = "in"

    def __init__(self, max_rounds: int | None = None) -> None:
        self.max_rounds = max_rounds

    def run(self, graph: Graph, root: int = 0, **kwargs) -> dict:
        """Compute distances from ``root``.

        Returns ``{"distances", "rounds", "plan"}``; unreachable vertices
        get ``inf``.
        """
        if not graph.is_weighted:
            raise ValueError("SSSP needs a weighted graph")
        n = graph.num_vertices
        dist = np.full(n, np.inf)
        dist[root] = 0.0
        frontier = VertexSubset.single(n, root)
        supersteps: list[SuperStep] = []
        total_edges = 0
        max_rounds = self.max_rounds if self.max_rounds is not None else n

        improved_counts: list[int] = []

        def relax(src, dst, weights):
            candidate = dist[src] + weights
            before = dist[dst].copy()
            np.minimum.at(dist, dst, candidate)
            improved = dist[dst] < before
            improved_counts.append(int(improved.sum()))
            return improved

        rounds = 0
        while not frontier.is_empty() and rounds < max_rounds:
            active = frontier.ids()
            edges = int(np.diff(graph.out_offsets)[active].sum())
            calls_before = len(improved_counts)
            result = edge_map(graph, frontier, relax, direction="push")
            improved = improved_counts[-1] if len(improved_counts) > calls_before else 0
            supersteps.append(
                SuperStep(
                    "push",
                    active,
                    edges,
                    write_fraction=improved / edges if edges else 0.0,
                )
            )
            total_edges += edges
            frontier = result.frontier
            rounds += 1

        if not supersteps:
            supersteps.append(SuperStep("push", np.array([root]), 0))
        # The traced super-step stands in for the whole run, so it carries
        # the run-aggregate write fraction: mid-BFS rounds improve many
        # distances, but over all rounds most relaxations fail, which is
        # why SSSP generates far less coherence traffic than PRD (paper
        # Section VI-C).
        total_improved = sum(improved_counts)
        aggregate_fraction = total_improved / max(total_edges, 1)
        supersteps = [
            SuperStep(s.direction, s.active, s.edges, aggregate_fraction)
            for s in supersteps
        ]
        representative = int(np.argmax([s.edges for s in supersteps]))
        plan = TracePlan(
            app=self.name,
            supersteps=tuple(supersteps),
            representative=representative,
            total_edges=max(total_edges, 1),
            detail={"rounds": rounds, "root": root},
        )
        return {"distances": dist, "rounds": rounds, "plan": plan}
