"""Streaming super-step trace generation for the fused trace→simulate path.

:meth:`GraphApp.trace <repro.apps.base.GraphApp.trace>` materializes the
whole super-step trace — concatenated keyed streams, one global stable
sort, run-length compression — before the simulator sees a single run.
At paper-scale graphs (tens of millions of vertices) that intermediate is
multiple GiB.  :func:`streaming_trace` produces the *same* trace as a
:class:`~repro.framework.trace.StreamingTrace` of bounded chunks instead,
so the fused pipeline stage can feed it straight into the simulator's
persistent state and peak memory stays one chunk, not one trace.

Why chunking is exact
---------------------

The global time keys are ``local_index + quantum * 2 * E`` (plus small
per-stream fractional offsets), where ``quantum = local_index //
INTERLEAVE_QUANTUM`` within each core's contiguous edge segment.  All
keys of quantum ``q`` lie in ``[q*2E - 1, q*2E + E + 1)`` — *disjoint
ranges per quantum*.  The globally key-sorted trace is therefore the
concatenation of per-quantum sorted sub-traces, so building batches of
whole quantum slices and sorting each batch independently reproduces the
monolithic order run for run:

* **same keys** — every access keeps the key the monolithic builder
  would assign (global edge indices, global per-vertex anchors);
* **same tie order** — equal keys imply equal quanta (anchors differ by
  less than ``E`` while quanta are ``2E`` apart), so ties never straddle
  a batch, and within a batch streams are added in the monolithic order
  with each stream's entries in original stream order;
* **same accesses** — the block-transition elision that drops guaranteed
  L1 hits compares each stream entry to its *stream-order* predecessor,
  which at a batch boundary is computed analytically from the CSR
  instead of being carried in memory;
* **seam runs** — a run split across two chunks is re-merged by
  :meth:`StreamingTrace.chunks`, restoring the exact run sequence.

The differential suite asserts the materialized stream equals the
monolithic trace array-for-array, and the fused simulate path is
counter-identical to the two-stage path.
"""

from __future__ import annotations

import numpy as np

from repro.framework.trace import AddressSpace, AppTrace, StreamingTrace, TraceBuilder

__all__ = ["streaming_trace", "DEFAULT_CHUNK_EDGES"]

#: Edge-stream entries targeted per chunk (the O(chunk) working set of
#: the fused stage).  ~1M edges keeps a chunk's packed arrays in the
#: tens of MB while amortizing per-batch setup.
DEFAULT_CHUNK_EDGES = 1 << 20


def _transitions(blocks: np.ndarray) -> np.ndarray:
    """Block-transition emit mask over one full stream (first entry True)."""
    mask = np.empty(blocks.size, dtype=bool)
    if blocks.size:
        mask[0] = True
        mask[1:] = blocks[1:] != blocks[:-1]
    return mask


class _StreamPlan:
    """O(V) geometry shared by every batch of one super-step stream."""

    def __init__(self, app, graph, step) -> None:
        from repro.apps import base

        self.app = app
        self.graph = graph
        self.step = step
        self.quantum = base.INTERLEAVE_QUANTUM
        space = AddressSpace()
        self.vertex_region = space.region(
            "vertex", graph.num_vertices + 1, base.VERTEX_ENTRY_BYTES
        )
        self.edge_region = space.region("edge", graph.num_edges, base.EDGE_ENTRY_BYTES)
        self.prop_region = space.region(
            "property", graph.num_vertices, app.irregular_property_bytes
        )
        self.out_region = space.region("out_property", graph.num_vertices, 8)
        self.weight_region = (
            space.region("weights", graph.num_edges, 8) if graph.is_weighted else None
        )

        self.pull = step.direction == "pull"
        self.csr_offsets = np.ascontiguousarray(
            graph.in_offsets if self.pull else graph.out_offsets, dtype=np.int64
        )
        self.endpoints = graph.in_sources if self.pull else graph.out_targets
        if step.active is None:
            ids = np.arange(graph.num_vertices, dtype=np.int64)
        else:
            ids = np.asarray(step.active, dtype=np.int64)
        self.ids = ids
        lengths = (self.csr_offsets[ids + 1] - self.csr_offsets[ids]).astype(np.int64)
        self.lengths = lengths
        self.edges = int(lengths.sum())
        first_edge = np.zeros(ids.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=first_edge[1:])
        self.first_edge = first_edge
        last_edge = first_edge + np.maximum(lengths - 1, 0)
        self.cores_v = base.core_of_vertices(ids, graph.num_vertices)

        # Per-core contiguous segments of the edge enumeration — exactly
        # the runs `_interleave_offsets` detects on the per-edge core
        # stream (cores with no edges contribute no segment).
        nz = lengths > 0
        nz_cores = self.cores_v[nz]
        nz_first = first_edge[nz]
        if nz_cores.size:
            change = np.empty(nz_cores.size, dtype=bool)
            change[0] = True
            change[1:] = nz_cores[1:] != nz_cores[:-1]
            self.seg_start = nz_first[change]
            self.seg_end = np.append(self.seg_start[1:], self.edges)
        else:
            self.seg_start = np.empty(0, dtype=np.int64)
            self.seg_end = np.empty(0, dtype=np.int64)
        seg_len = self.seg_end - self.seg_start
        self.num_quanta = (
            int(((seg_len + self.quantum - 1) // self.quantum).max())
            if seg_len.size
            else 1
        )

        # Per-vertex anchors: the monolithic builder keys vertex-array and
        # output-array accesses to the time offset of the vertex's
        # first/last edge.
        if self.edges:
            fidx = np.minimum(first_edge, self.edges - 1)
            lidx = np.minimum(last_edge, self.edges - 1)
            self.q_first = self._quantum_of(fidx)
            self.q_last = self._quantum_of(lidx)
            first_off = self.q_first * (2.0 * self.edges)
            last_off = self.q_last * (2.0 * self.edges)
        else:
            self.q_first = self.q_last = np.zeros(ids.size, dtype=np.int64)
            first_off = last_off = np.zeros(ids.size)
        self.vkeys = first_edge - 0.7 + first_off
        if self.pull:
            self.okeys = last_edge + 0.3 + last_off
            self.oq = self.q_last
        else:
            self.okeys = first_edge - 0.6 + first_off
            self.oq = self.q_first
        self.emit_v = _transitions(self.vertex_region.block_of(ids))
        self.emit_o = _transitions(self.out_region.block_of(ids))

        # Push-mode write mask over the whole edge stream (identical RNG
        # draw to the monolithic path), sliced per batch.
        self.write_mask: np.ndarray | None = None
        if not self.pull and step.write_fraction < 1.0:
            rng = np.random.default_rng(self.edges)
            self.write_mask = rng.random(self.edges) < step.write_fraction

    def _quantum_of(self, k: np.ndarray) -> np.ndarray:
        """Interleave quantum of global edge indices ``k``."""
        seg = np.searchsorted(self.seg_start, k, side="right") - 1
        return (k - self.seg_start[seg]) // self.quantum

    def _positions_of(self, k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge-array positions and owner-vertex indices of edge indices."""
        owner = np.searchsorted(self.first_edge, k, side="right") - 1
        pos = self.csr_offsets[self.ids[owner]] + (k - self.first_edge[owner])
        return pos, owner

    def _stream_elided(self, region, pos: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Block-transition emit mask for a batch of one edge-level stream.

        Entry ``i`` is kept iff its block differs from its stream-order
        predecessor's — edge ``k[i] - 1`` — whether that predecessor sits
        in this batch or a previous one.
        """
        blocks = region.block_of(pos)
        emit = np.empty(k.size, dtype=bool)
        emit[1:] = blocks[1:] != blocks[:-1]
        # Where k jumps (batch head, segment boundary inside the batch)
        # the in-array predecessor is not the stream predecessor.
        jump = np.empty(k.size, dtype=bool)
        jump[0] = True
        jump[1:] = k[1:] != k[:-1] + 1
        jidx = np.flatnonzero(jump)
        kprev = k[jidx] - 1
        has_prev = kprev >= 0
        if has_prev.any():
            ppos, _ = self._positions_of(kprev[has_prev])
            emit[jidx[has_prev]] = blocks[jidx[has_prev]] != region.block_of(ppos)
        emit[jidx[~has_prev]] = True
        return emit

    def batch_trace(self, q0: int, q1: int, engine=None, threads=None):
        """Build the sub-trace of quantum slices ``[q0, q1)``."""
        builder = TraceBuilder()
        parts_k = []
        parts_off = []
        for s0, e0 in zip(self.seg_start, self.seg_end):
            s = s0 + q0 * self.quantum
            e = min(s0 + q1 * self.quantum, e0)
            if s >= e:
                continue
            k = np.arange(s, e, dtype=np.int64)
            parts_k.append(k)
            parts_off.append(
                ((k - s0) // self.quantum).astype(np.float64) * (2.0 * self.edges)
            )
        if parts_k:
            k = np.concatenate(parts_k)
            ekeys = k.astype(np.float64) + np.concatenate(parts_off)
            pos, owner = self._positions_of(k)
            cores_k = self.cores_v[owner]
            emit = self._stream_elided(self.edge_region, pos, k)
            builder.add(
                self.edge_region, pos[emit], ekeys[emit] - 0.5, core=cores_k[emit]
            )
            if not self.pull and self.weight_region is not None:
                emit_w = self._stream_elided(self.weight_region, pos, k)
                builder.add(
                    self.weight_region,
                    pos[emit_w],
                    ekeys[emit_w] - 0.4,
                    core=cores_k[emit_w],
                )
            others = self.endpoints[pos].astype(np.int64)
            if self.pull:
                write: np.ndarray | bool = False
            elif self.write_mask is None:
                write = True
            else:
                write = self.write_mask[k]
            builder.add(self.prop_region, others, ekeys, write=write, core=cores_k)
        sel = (self.q_first >= q0) & (self.q_first < q1) & self.emit_v
        builder.add(
            self.vertex_region, self.ids[sel], self.vkeys[sel], core=self.cores_v[sel]
        )
        osel = (self.oq >= q0) & (self.oq < q1) & self.emit_o
        builder.add(
            self.out_region,
            self.ids[osel],
            self.okeys[osel],
            write=self.pull,
            core=self.cores_v[osel],
        )
        return builder.build(engine=engine, threads=threads)


def streaming_trace(
    app,
    graph,
    plan,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    engine: str | None = None,
    threads: int | None = None,
) -> AppTrace:
    """Streaming equivalent of :meth:`GraphApp.trace`.

    Returns an :class:`AppTrace` whose ``trace`` is a
    :class:`StreamingTrace`: consuming its chunks yields the exact run
    sequence of the monolithic build while holding only ``chunk_edges``
    worth of trace in memory at a time.  ``engine``/``threads`` select
    the per-batch merge kernel, same contract as ``TraceBuilder.build``.
    """
    if chunk_edges <= 0:
        raise ValueError("chunk_edges must be positive")
    step = plan.traced
    sp = _StreamPlan(app, graph, step)
    segments = max(1, int(sp.seg_start.size))
    quanta_per_batch = max(1, chunk_edges // (sp.quantum * segments))

    def chunk_factory():
        for q0 in range(0, sp.num_quanta, quanta_per_batch):
            yield sp.batch_trace(
                q0, min(q0 + quanta_per_batch, sp.num_quanta), engine, threads
            )

    active_count = graph.num_vertices if step.active is None else int(step.active.size)
    instructions = int(
        app.instructions_per_edge * sp.edges
        + app.instructions_per_vertex * active_count
    )
    trace = StreamingTrace(
        chunk_factory,
        detail={
            "chunk_edges": chunk_edges,
            "quanta_per_batch": quanta_per_batch,
            "num_quanta": sp.num_quanta,
        },
    )
    return AppTrace(
        app=app.name,
        trace=trace,
        instructions=instructions,
        superstep_multiplier=plan.multiplier,
        detail={
            "direction": step.direction,
            "edges": sp.edges,
            "active": active_count,
            "streaming": True,
        },
    )
