"""repro — reproduction of *A Closer Look at Lightweight Graph Reordering*.

(Faldu, Diamond & Grot, IISWC 2019.)

The package is organized bottom-up:

* :mod:`repro.graph` — CSR graphs, generators, skew/structure analytics;
* :mod:`repro.reorder` — DBG (the paper's contribution) and every baseline
  reordering technique;
* :mod:`repro.framework` — a Ligra-like processing engine with memory-trace
  emission;
* :mod:`repro.apps` — the five evaluated applications;
* :mod:`repro.cachesim` — the scaled cache-hierarchy simulator standing in
  for hardware performance counters;
* :mod:`repro.perfmodel` — cycle timing and reordering-cost models;
* :mod:`repro.analysis` — one function per paper table/figure, plus the CLI.

Quickstart::

    from repro.graph.generators import load_dataset
    from repro.reorder import DBG
    from repro.apps import PageRank

    graph = load_dataset("sd")
    result = DBG(degree_kind="out").apply(graph)
    ranks = PageRank().run(result.graph)["ranks"]
"""

from repro.graph import Graph, from_edges
from repro.reorder import (
    DBG,
    Gorder,
    HubCluster,
    HubSort,
    Original,
    Sort,
    make_technique,
)
from repro.apps import make_app

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "from_edges",
    "DBG",
    "Sort",
    "HubSort",
    "HubCluster",
    "Gorder",
    "Original",
    "make_technique",
    "make_app",
    "__version__",
]
