"""`ReorderService`: the reordering-as-a-service HTTP endpoint.

Request lifecycle (the order is the perf story)::

    parse -> derive artifact address -> warm? serve from store
                                     -> in flight? coalesce onto ticket
                                     -> admit to priority queue -> pool

Endpoints (JSON in / JSON out):

* ``POST /v1/graphs`` — upload an edge list into the tenant's store
  namespace; returns the content-addressed ``upload:<digest>`` key.
* ``POST /v1/reorder`` — ``{graph, technique, tenant?, degree_kind?,
  priority?, include_mapping?}`` → permutation summary (optionally the
  permutation itself).
* ``POST /v1/analyze`` — ``{graph, technique, app, tenant?, config?,
  policy?, priority?}`` → full cache-analysis cell result (MPKI, miss
  breakdown, modelled cycles).  ``policy`` is shorthand for
  ``config.replacement`` — any registered replacement policy
  (``lru``/``fifo``/``lip``/``grasp``/...), validated at admission.
* ``GET /v1/stats`` — scheduler + store counters (``?usage=1`` adds the
  per-namespace on-disk accounting).
* ``GET /healthz`` — liveness.

Every response carries a ``meta`` block: request span id (the span is
recorded into the process tracer, so an observed run's ``events.jsonl``
sees every request), the serve source (``warm`` / ``coalesced`` /
``cold``), queue/compute latencies and the artifact address served.
"""

from __future__ import annotations

import asyncio
import functools
import time

from repro import engines
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TRACER
from repro.apps import make_app
from repro.pipeline.cells import ExperimentConfig
from repro.pipeline.grid import StageExecutor
from repro.pipeline.stages import PIPELINE
from repro.pipeline.store import ArtifactStore, _NAMESPACE_RE
from repro.serve.http import Connection, HttpError, Request, encode_response
from repro.serve.jobs import run_job, warm_worker
from repro.serve.pipeline import (
    UPLOAD_KIND,
    UPLOAD_PREFIX,
    ServePipeline,
    UnknownGraphError,
    canonical_config_spec,
    config_from_spec,
    mapping_summary,
    upload_graph_key,
    upload_payload,
)
from repro.serve.scheduler import QueueFullError, ServeScheduler

__all__ = ["ClientDisconnected", "ReorderService"]

#: Tenant requests carry no namespace unless they target an upload.
DEFAULT_TENANT = "anon"


class ClientDisconnected(Exception):
    """The requesting client went away while its job was in flight."""


def _json_default(value):
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


def _error_status(exc: BaseException) -> int:
    if isinstance(exc, UnknownGraphError):
        return 404
    if isinstance(exc, (KeyError, ValueError)):
        return 400
    return 500


def _error_message(exc: BaseException) -> str:
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return f"{type(exc).__name__}: {exc}"


class ReorderService:
    """Asyncio HTTP service over one store + one stage-executor pool."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        store: ArtifactStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 256,
        tenant_priority: dict[str, int] | None = None,
        default_priority: int = 10,
        idle_timeout: float = 60.0,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.store = store or ArtifactStore()
        self.host = host
        self.port = port
        self.workers = workers
        self.max_queue = max_queue
        self.tenant_priority = dict(tenant_priority or {})
        self.default_priority = default_priority
        self.idle_timeout = idle_timeout
        self.metrics = MetricsRegistry()
        self._pipeline = ServePipeline(self.config, store=self.store)
        #: Server-side key/warm-path pipelines per (namespace, config).
        self._keyers: dict[tuple, ServePipeline] = {(None, None): self._pipeline}
        self._executor: StageExecutor | None = None
        self.scheduler: ServeScheduler | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Validate engines, spin up the pool, bind the listening socket."""
        PIPELINE.validate_engines()
        self._engines = {
            domain: info.get("engine") for domain, info in engines.status().items()
        }
        self._executor = StageExecutor(
            self._pipeline, self.workers, pipeline_cls=ServePipeline
        )
        # Spawn (and warm) every worker process NOW, while this process
        # holds no sockets: a worker forked later would inherit client
        # connection fds, keeping them open after the client closes and
        # blinding the disconnect watcher.  Also moves fork+init cost out
        # of the first request's latency.
        await asyncio.gather(
            *(
                asyncio.wrap_future(self._executor.submit(warm_worker, None))
                for _ in range(self.workers)
            )
        )
        self.scheduler = ServeScheduler(
            self._executor, run_job, max_queue=self.max_queue, metrics=self.metrics
        )
        self.scheduler.start()
        self._server = await asyncio.start_server(self._client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        TRACER.event("serve_start", kind="serve", host=self.host, port=self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if self.scheduler is not None:
            await self.scheduler.stop()
        if self._executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(
                    self._executor.shutdown, wait=True, cancel_pending=True
                ),
            )
            self._executor = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() the service first"
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------------
    async def _client(self, reader, writer) -> None:
        conn = Connection(reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await conn.read_request(timeout=self.idle_timeout)
                except HttpError as exc:
                    await conn.send(
                        encode_response(
                            exc.status, {"error": exc.message}, keep_alive=False
                        )
                    )
                    break
                if request is None:
                    break
                try:
                    status, payload = await self._dispatch(request, conn)
                except ClientDisconnected:
                    break
                except HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except QueueFullError as exc:
                    status, payload = 503, {"error": str(exc)}
                except Exception as exc:  # worker/compute failure -> client
                    status = _error_status(exc)
                    payload = {"error": _error_message(exc)}
                await conn.send(
                    encode_response(
                        status,
                        payload,
                        keep_alive=request.keep_alive,
                        default=_json_default,
                    )
                )
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Service shutdown: end the handler task cleanly so asyncio's
            # stream-protocol callback doesn't log a cancelled task.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            await conn.close()

    async def _dispatch(self, request: Request, conn: Connection) -> tuple[int, dict]:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, {"status": "ok"}
        if route == ("GET", "/v1/stats"):
            return 200, self._stats(full="usage=1" in request.query)
        if route == ("POST", "/v1/graphs"):
            return await self._upload(request)
        if route == ("POST", "/v1/reorder"):
            return await self._job(request, conn, op="mapping")
        if route == ("POST", "/v1/analyze"):
            return await self._job(request, conn, op="cell")
        if request.path in ("/healthz", "/v1/stats", "/v1/graphs", "/v1/reorder", "/v1/analyze"):
            raise HttpError(405, f"{request.method} not allowed on {request.path}")
        raise HttpError(404, f"unknown endpoint {request.path}")

    # -- endpoints -----------------------------------------------------------
    def _stats(self, full: bool = False) -> dict:
        stats = self.scheduler.stats() if self.scheduler else {}
        stats["server"] = {
            "uptime_s": time.monotonic() - self._started,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "engines": getattr(self, "_engines", {}),
        }
        stats["store"] = self.store.stats.as_dict()
        if full:
            stats["usage"] = self.store.usage()
        return stats

    def _tenant(self, body: dict) -> str:
        tenant = str(body.get("tenant") or DEFAULT_TENANT)
        if not _NAMESPACE_RE.match(tenant):
            raise HttpError(400, f"bad tenant {tenant!r} (want [a-z0-9][a-z0-9_.-]*)")
        return tenant

    async def _upload(self, request: Request) -> tuple[int, dict]:
        body = request.json()
        tenant = self._tenant(body)
        try:
            payload = upload_payload(
                body.get("num_vertices", 0),
                body.get("edges", []),
                body.get("weights"),
                body.get("symmetrize", False),
            )
        except (ValueError, TypeError) as exc:
            raise HttpError(400, f"bad upload: {exc}") from None
        graph_key = upload_graph_key(payload)
        store = self.store.namespaced(tenant)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, functools.partial(store.put, UPLOAD_KIND, graph_key, payload)
        )
        self.metrics.inc("serve.uploads")
        return 200, {
            "graph_key": graph_key,
            "namespace": tenant,
            "num_vertices": payload["num_vertices"],
            "num_edges": int(payload["edges"].shape[0]),
        }

    def _keyer(self, namespace: str | None, config_spec: tuple | None) -> ServePipeline:
        key = (namespace, config_spec)
        keyer = self._keyers.get(key)
        if keyer is None:
            keyer = ServePipeline(
                config_from_spec(self.config, config_spec),
                store=self.store.namespaced(namespace),
            )
            self._keyers[key] = keyer
        return keyer

    async def _job(self, request: Request, conn: Connection, op: str) -> tuple[int, dict]:
        start_mono = time.monotonic()
        start_ts = TRACER.now()
        body = request.json()
        tenant = self._tenant(body)
        graph = body.get("graph")
        technique = body.get("technique")
        if not graph or not technique:
            raise HttpError(400, "'graph' and 'technique' are required")
        spec = dict(body.get("config") or {})
        if body.get("policy") is not None:
            # Top-level shorthand for the common sweep axis; folded into
            # the config spec so it shares addressing/coalescing with the
            # equivalent {"config": {"policy": ...}} request.
            spec.setdefault("policy", body["policy"])
        try:
            config_spec = canonical_config_spec(spec)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        namespace = tenant if graph.startswith(UPLOAD_PREFIX) else None
        keyer = self._keyer(namespace, config_spec)
        degree_kind = body.get("degree_kind")
        app = body.get("app")
        try:
            if op == "mapping":
                if technique == "Original":
                    raise HttpError(
                        400, "'Original' is the identity ordering; nothing to compute"
                    )
                kind = "mapping"
                key = keyer.mapping_store_key(graph, technique, degree_kind or "out")
            else:
                if not app:
                    raise HttpError(400, "'app' is required for /v1/analyze")
                make_app(app)  # validate before queueing
                kind = "cell"
                key = keyer.cell_store_key(app, graph, technique)
        except KeyError as exc:
            raise HttpError(400, _error_message(exc)) from None
        artifact = keyer.store.path_for(kind, key).name
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.op.{op}")

        loop = asyncio.get_running_loop()
        cached = await loop.run_in_executor(None, keyer.store.get, kind, key)
        queue_ms = compute_ms = 0.0
        if cached is not None:
            source = "warm"
            payload = mapping_summary(cached) if op == "mapping" else dict(cached)
        else:
            job = {
                "op": op,
                "graph": graph,
                "technique": technique,
                "degree_kind": degree_kind,
                "app": app,
                "namespace": namespace,
                "config": config_spec,
            }
            priority = int(
                body.get(
                    "priority",
                    self.tenant_priority.get(tenant, self.default_priority),
                )
            )
            waiter, ticket, coalesced = self.scheduler.submit(
                (namespace or "", artifact), job, priority
            )
            source = "coalesced" if coalesced else "cold"
            payload = dict(await self._await_result(conn, waiter, ticket))
            queue_ms = 1000.0 * ticket.queue_seconds()
            compute_ms = 1000.0 * (ticket.compute_s or 0.0)
        if op == "mapping" and body.get("include_mapping"):
            mapping = await loop.run_in_executor(None, keyer.store.get, kind, key)
            if mapping is not None:
                payload["mapping"] = [int(v) for v in mapping]

        total_ms = 1000.0 * (time.monotonic() - start_mono)
        self.metrics.inc(f"serve.source.{source}")
        self.metrics.observe(f"serve.{source}_s", total_ms / 1000.0)
        span_id = TRACER.record_span(
            "serve.request",
            start=start_ts,
            wall_s=total_ms / 1000.0,
            kind="serve",
            op=op,
            graph=graph,
            technique=technique,
            tenant=tenant,
            source=source,
        )
        return 200, {
            "result": payload,
            "meta": {
                "request_id": span_id,
                "source": source,
                "artifact": artifact,
                "namespace": namespace or "",
                "queue_ms": round(queue_ms, 3),
                "compute_ms": round(compute_ms, 3),
                "total_ms": round(total_ms, 3),
                "queue_depth": self.scheduler.queue_depth(),
            },
        }

    async def _await_result(self, conn: Connection, waiter, ticket):
        """Wait on a job while watching the client for disconnection.

        A vanished client detaches its waiter (cancelling the job when it
        was the last interested party and still queued) — the coalescing
        contract that sibling requests keep their result either way.
        """
        watch = asyncio.ensure_future(conn.wait_disconnect())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {waiter, watch}, return_when=asyncio.FIRST_COMPLETED
                )
                if waiter in done:
                    return waiter.result()
                if watch in done:
                    if watch.result():
                        self.scheduler.detach(ticket, waiter)
                        raise ClientDisconnected()
                    # Bytes arrived early (pipelined request): keep waiting.
                    watch = asyncio.ensure_future(conn.wait_disconnect())
        finally:
            if not watch.done():
                watch.cancel()
