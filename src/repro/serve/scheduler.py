"""Request coalescing + batching scheduler for the serving layer.

The scheduler is the piece that turns N concurrent clients into at most
one computation per artifact:

* **Coalescing** — jobs are keyed by the *artifact address* their result
  will be stored under (namespace + the store's content-addressed
  filename).  A request whose key is already in flight attaches a waiter
  to the existing ticket instead of enqueueing a duplicate; when the
  computation lands, every waiter resolves from the single result.
* **Batching with priorities** — admitted tickets sit in a bounded
  priority queue (lower number = sooner; per-tenant defaults, optional
  per-request override) and a dispatcher feeds them to the shared
  :class:`~repro.pipeline.grid.StageExecutor` pool, at most one job per
  pool worker in flight, so the queue — not the pool's internal FIFO —
  decides execution order.
* **Backpressure** — a full queue rejects at admission
  (:class:`QueueFullError` → HTTP 503) instead of growing without bound.
* **Cancellation** — a waiter whose client disconnects detaches; when
  the *last* waiter of a still-queued ticket detaches, the ticket is
  cancelled and never occupies a worker.  A ticket already running
  finishes (its artifact lands in the store and warms the next request)
  — the result is simply dropped.

The scheduler is single-event-loop code: every method must be called
from the loop thread, which is what makes the check-then-attach
coalescing race-free without locks.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.observability.metrics import MetricsRegistry

__all__ = ["QueueFullError", "JobTicket", "ServeScheduler"]


class QueueFullError(Exception):
    """Admission queue at capacity; the caller should shed the request."""


class JobTicket:
    """One admitted (or coalesced-onto) unit of in-flight computation."""

    __slots__ = (
        "key",
        "job",
        "priority",
        "waiters",
        "state",
        "enqueued",
        "started",
        "compute_s",
    )

    def __init__(self, key: tuple, job: dict, priority: int) -> None:
        self.key = key
        self.job = job
        self.priority = priority
        self.waiters: list[asyncio.Future] = []
        self.state = "queued"  # queued -> running -> done | cancelled
        self.enqueued = time.monotonic()
        self.started: float | None = None
        self.compute_s: float | None = None

    def queue_seconds(self) -> float:
        return (self.started or time.monotonic()) - self.enqueued


class ServeScheduler:
    """Coalescing admission queue in front of a :class:`StageExecutor`."""

    def __init__(
        self,
        executor,
        runner,
        max_queue: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._executor = executor
        self._runner = runner  #: module-level worker fn: ``runner(job)``
        self._inflight: dict[tuple, JobTicket] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue(maxsize=max_queue)
        self._slots = asyncio.Semaphore(max(1, getattr(executor, "workers", 1)))
        self._seq = itertools.count()
        self.max_queue = max_queue
        self.metrics = metrics or MetricsRegistry()
        self._dispatcher: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def stop(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for ticket in list(self._inflight.values()):
            for waiter in ticket.waiters:
                if not waiter.done():
                    waiter.cancel()
        self._inflight.clear()

    # -- admission -----------------------------------------------------------
    def submit(self, key: tuple, job: dict, priority: int = 10):
        """Admit (or coalesce) a job; returns ``(waiter, ticket, coalesced)``.

        ``waiter`` is an :class:`asyncio.Future` resolving to the job's
        payload.  Raises :class:`QueueFullError` when the job is new and
        the admission queue is at capacity.
        """
        loop = asyncio.get_running_loop()
        ticket = self._inflight.get(key)
        if ticket is not None:
            waiter = loop.create_future()
            ticket.waiters.append(waiter)
            self.metrics.inc("serve.coalesced")
            return waiter, ticket, True
        ticket = JobTicket(key, job, priority)
        try:
            self._queue.put_nowait((priority, next(self._seq), ticket))
        except asyncio.QueueFull:
            self.metrics.inc("serve.rejected")
            raise QueueFullError(
                f"admission queue full ({self.max_queue} queued)"
            ) from None
        self._inflight[key] = ticket
        self.metrics.set_gauge("serve.queue_depth", self._queue.qsize())
        waiter = loop.create_future()
        ticket.waiters.append(waiter)
        return waiter, ticket, False

    def detach(self, ticket: JobTicket, waiter: asyncio.Future) -> None:
        """Drop one waiter (client gone); cancel the ticket if unclaimed.

        Cancellation only applies while the ticket is still queued — a
        running computation is allowed to finish and warm the store.
        """
        if not waiter.done():
            waiter.cancel()
        try:
            ticket.waiters.remove(waiter)
        except ValueError:
            return
        if not ticket.waiters and ticket.state == "queued":
            ticket.state = "cancelled"
            self._inflight.pop(ticket.key, None)
            self.metrics.inc("serve.cancelled")

    # -- introspection -------------------------------------------------------
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def inflight(self) -> int:
        return len(self._inflight)

    def stats(self) -> dict:
        snap = self.metrics.snapshot()
        snap["queue"] = {"depth": self._queue.qsize(), "max": self.max_queue}
        snap["inflight"] = len(self._inflight)
        return snap

    # -- execution -----------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            _, _, ticket = await self._queue.get()
            if ticket.state == "cancelled":
                # Lazily skipped: detach() flagged it while it sat queued.
                self._queue.task_done()
                continue
            await self._slots.acquire()
            if ticket.state == "cancelled":
                # Detached while we held it waiting for a worker slot —
                # it left the queue but never stopped being cancellable.
                self._slots.release()
                self._queue.task_done()
                continue
            ticket.state = "running"
            ticket.started = time.monotonic()
            self.metrics.observe("serve.queue_s", ticket.started - ticket.enqueued)
            asyncio.get_running_loop().create_task(self._run(ticket))

    async def _run(self, ticket: JobTicket) -> None:
        try:
            self.metrics.inc("serve.executions")
            future = self._executor.submit(self._runner, ticket.job)
            try:
                payload = await asyncio.wrap_future(future)
            except Exception as exc:
                self.metrics.inc("serve.execution_errors")
                for waiter in ticket.waiters:
                    if not waiter.done():
                        waiter.set_exception(exc)
            else:
                ticket.compute_s = time.monotonic() - ticket.started
                self.metrics.observe("serve.compute_s", ticket.compute_s)
                for waiter in ticket.waiters:
                    if not waiter.done():
                        waiter.set_result(payload)
        finally:
            ticket.state = "done"
            self._inflight.pop(ticket.key, None)
            self.metrics.set_gauge("serve.queue_depth", self._queue.qsize())
            self._slots.release()
            self._queue.task_done()
