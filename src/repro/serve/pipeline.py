"""Serving-side pipeline: uploaded graphs, request configs, job specs.

The serving layer reuses the experiment pipeline wholesale — the same
:class:`~repro.pipeline.cells.CellPipeline` stages, the same artifact
addresses, the same engines.  This module adds the three pieces a
traffic-facing deployment needs on top:

* :class:`ServePipeline` — a :class:`CellPipeline` whose ``generate``
  stage can also serve *tenant-uploaded* graphs (kind ``"upload"`` in
  the store, addressed by content digest) next to the generator-spec
  datasets;
* :func:`config_from_spec` — per-request cache-configuration overrides
  resolved against the server's base :class:`ExperimentConfig`, so an
  ``analyze`` request can sweep hierarchy shapes without a redeploy (the
  overridden config flows into the cell's content address, so distinct
  configurations never alias);
* :func:`job_key` / :func:`job_payload` — the canonical translation of a
  request into (store kind, store key, coalescing identity).  Coalescing
  is keyed by the *artifact address* — the same content addressing the
  store uses on disk — so two requests coalesce exactly when they would
  have produced the same file.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.cachesim import CacheGeometry, HierarchyConfig
from repro.cachesim.policies import get_policy
from repro.graph.builder import from_edges
from repro.graph.csr import Graph
from repro.pipeline.cells import CellPipeline, ExperimentConfig
from repro.pipeline.profiler import PROFILER

__all__ = [
    "UPLOAD_PREFIX",
    "UPLOAD_KIND",
    "UnknownGraphError",
    "ServePipeline",
    "upload_graph_key",
    "upload_payload",
    "config_from_spec",
    "canonical_config_spec",
    "mapping_summary",
]

#: Graph keys beginning with this prefix address tenant uploads in the
#: store (kind :data:`UPLOAD_KIND`); everything else is a generator spec.
UPLOAD_PREFIX = "upload:"
UPLOAD_KIND = "upload"

#: ``config_spec`` keys an ``analyze`` request may override, mapped to
#: how they apply to the base :class:`ExperimentConfig`.  ``policy`` is
#: a client-facing alias for ``replacement`` (the registry vocabulary);
#: it is normalized away during canonicalization so the two spellings
#: coalesce onto the same artifact address.
_CONFIG_SPEC_KEYS = (
    "scale",
    "num_roots",
    "l1_bytes",
    "l2_bytes",
    "l3_bytes",
    "replacement",
    "policy",
)


class UnknownGraphError(KeyError):
    """An upload graph key that is not present in the (tenant's) store."""


def upload_payload(
    num_vertices: int,
    edges: np.ndarray,
    weights: np.ndarray | None = None,
    symmetrize: bool = False,
) -> dict:
    """Validated, canonical store payload for one uploaded graph."""
    edges = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (E, 2)")
    num_vertices = int(num_vertices)
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
        raise ValueError("edge endpoint out of range")
    payload = {
        "num_vertices": num_vertices,
        "edges": edges,
        "symmetrize": bool(symmetrize),
    }
    if weights is not None:
        weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
        if weights.shape != (edges.shape[0],):
            raise ValueError("weights must align with edges")
        payload["weights"] = weights
    return payload


def upload_graph_key(payload: dict) -> str:
    """Content-digest graph key (``upload:<digest>``) of an upload payload.

    Identical uploads derive identical keys, so re-uploading is free and
    requests against re-uploaded graphs keep hitting the warm artifacts.
    """
    digest = hashlib.sha256()
    digest.update(str(payload["num_vertices"]).encode())
    digest.update(b"|" + str(payload["symmetrize"]).encode() + b"|")
    digest.update(payload["edges"].tobytes())
    if "weights" in payload:
        digest.update(payload["weights"].tobytes())
    return UPLOAD_PREFIX + digest.hexdigest()[:24]


class ServePipeline(CellPipeline):
    """A :class:`CellPipeline` that also serves tenant-uploaded graphs.

    Graph keys with the ``upload:`` prefix resolve through the pipeline's
    store (which the serving layer points at the tenant's namespace);
    everything else falls through to the generator-spec datasets.  All
    downstream stages — mapping, relabel, trace, simulate, model — are
    inherited unchanged, so uploaded graphs flow through the exact code
    paths (and artifact addressing) the experiment grid uses.
    """

    def graph(self, dataset: str, weighted: bool = False) -> Graph:
        if not dataset.startswith(UPLOAD_PREFIX):
            return super().graph(dataset, weighted)
        key = (dataset, weighted)
        if key not in self._graphs:
            payload = self.store.get(UPLOAD_KIND, dataset)
            if payload is None:
                raise UnknownGraphError(dataset)
            with PROFILER.stage("generate", dataset=dataset, weighted=weighted):
                self._graphs[key] = _build_upload(dataset, payload, weighted)
        return self._graphs[key]


def _build_upload(graph_key: str, payload: dict, weighted: bool) -> Graph:
    weights = payload.get("weights")
    if weighted and weights is None:
        # Deterministic synthetic weights (same convention as the
        # generator datasets) so SSSP works on weightless uploads.
        seed = int.from_bytes(graph_key[-8:].encode(), "little") % (2**32)
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 64, size=payload["edges"].shape[0]).astype(
            np.float64
        )
    return from_edges(
        payload["num_vertices"],
        payload["edges"],
        weights if weighted else None,
        symmetrize=payload.get("symmetrize", False),
    )


# -- per-request configuration ------------------------------------------------

def canonical_config_spec(spec: dict | None) -> tuple | None:
    """Sorted-tuple identity of a config-override dict (None = defaults).

    Unknown keys are rejected here — at admission, with a client-facing
    error — rather than surfacing as a worker traceback mid-compute.
    The ``policy`` alias folds into ``replacement`` and the policy name
    is resolved against the replacement-policy registry, so a typo'd
    policy is a 400 at admission, not a worker traceback.
    """
    if not spec:
        return None
    unknown = sorted(set(spec) - set(_CONFIG_SPEC_KEYS))
    if unknown:
        raise ValueError(
            f"unknown config override(s) {unknown}; allowed: {list(_CONFIG_SPEC_KEYS)}"
        )
    spec = dict(spec)
    policy = spec.pop("policy", None)
    if policy is not None:
        existing = spec.get("replacement")
        if existing is not None and existing != policy:
            raise ValueError(
                f"conflicting policy overrides: policy={policy!r} vs "
                f"replacement={existing!r}"
            )
        spec["replacement"] = policy
    if spec.get("replacement") is not None:
        get_policy(str(spec["replacement"]), context="config override 'policy'")
    if not spec:
        return None
    return tuple(sorted(spec.items()))


def config_from_spec(
    base: ExperimentConfig, spec: dict | tuple | None
) -> ExperimentConfig:
    """Apply request-level overrides to the server's base configuration."""
    if not spec:
        return base
    overrides = dict(spec if isinstance(spec, dict) else list(spec))
    canonical = canonical_config_spec(overrides)  # validate + fold aliases
    overrides = dict(canonical or ())
    hierarchy = base.hierarchy
    geoms = {"l1": hierarchy.l1, "l2": hierarchy.l2, "l3": hierarchy.l3}
    for level, geom in geoms.items():
        size = overrides.get(f"{level}_bytes")
        if size is not None:
            geoms[level] = CacheGeometry(int(size), geom.associativity)
    hierarchy = HierarchyConfig(
        l1=geoms["l1"],
        l2=geoms["l2"],
        l3=geoms["l3"],
        cores_per_socket=hierarchy.cores_per_socket,
        replacement=overrides.get("replacement", hierarchy.replacement),
        ownership_blocks=hierarchy.ownership_blocks,
        engine=hierarchy.engine,
    )
    for level, geom in geoms.items():
        geom.num_sets  # noqa: B018 - validates power-of-two set count eagerly
    config = dataclasses.replace(
        base,
        hierarchy=hierarchy,
        scale=float(overrides.get("scale", base.scale)),
        num_roots=int(overrides.get("num_roots", base.num_roots)),
    )
    return config


def mapping_summary(mapping: np.ndarray) -> dict:
    """Compact response payload for a computed reordering permutation."""
    mapping = np.ascontiguousarray(np.asarray(mapping, dtype=np.int64))
    return {
        "num_vertices": int(mapping.shape[0]),
        "mapping_sha256": hashlib.sha256(mapping.tobytes()).hexdigest(),
    }
