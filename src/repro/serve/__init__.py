"""Reordering-as-a-service: asyncio HTTP serving of the repro pipeline.

The package turns the batch experiment pipeline into a long-lived,
multi-tenant service without adding any dependency beyond the stdlib:

* :mod:`repro.serve.http` — minimal HTTP/1.1 on asyncio streams with
  pushback-safe client-disconnect detection;
* :mod:`repro.serve.scheduler` — the perf core: request coalescing onto
  store artifact addresses, bounded priority admission, cancellation;
* :mod:`repro.serve.pipeline` — uploaded-graph resolution and
  per-request cache-config overrides on top of the cell pipeline;
* :mod:`repro.serve.jobs` — worker-side job execution on the shared
  :class:`~repro.pipeline.grid.StageExecutor` pool;
* :mod:`repro.serve.server` — :class:`ReorderService`, the endpoint set;
* :mod:`repro.serve.client` — a small keep-alive JSON client used by the
  load benchmark, CI smoke job and tests.
"""

from repro.serve.pipeline import (
    ServePipeline,
    UnknownGraphError,
    upload_graph_key,
    upload_payload,
)
from repro.serve.scheduler import JobTicket, QueueFullError, ServeScheduler
from repro.serve.server import ClientDisconnected, ReorderService

__all__ = [
    "ClientDisconnected",
    "JobTicket",
    "QueueFullError",
    "ReorderService",
    "ServePipeline",
    "ServeScheduler",
    "UnknownGraphError",
    "upload_graph_key",
    "upload_payload",
]
