"""Worker-side execution of serving jobs.

The serving scheduler feeds jobs to the same
:class:`~repro.pipeline.grid.StageExecutor` pool the experiment grid
uses; :func:`run_job` is the module-level function those pool workers
execute.  A job is a plain picklable dict::

    {"op": "mapping" | "cell",
     "graph": "<dataset>" | "upload:<digest>",
     "technique": "DBG", "degree_kind": "out" | None,
     "app": "PR" | None,
     "namespace": "<tenant>" | None,
     "config": canonical override tuple | None}

Workers keep one :class:`~repro.serve.pipeline.ServePipeline` per
``(namespace, config)`` so graphs, plans and mappings loaded for one
request amortize over every later request with the same shape — the
serving analog of the grid worker reusing its pipeline across jobs.
Every pipeline view shares the root store's statistics object, so the
deltas shipped back to the parent stay coherent regardless of which
tenant namespace a job touched.
"""

from __future__ import annotations

from repro.pipeline import grid
from repro.serve.pipeline import ServePipeline, config_from_spec, mapping_summary

__all__ = ["run_job", "warm_worker"]


def warm_worker(_job: dict | None = None) -> tuple:
    """No-op pool job: forces worker spawn + per-worker pipeline init.

    The service submits one of these per worker at startup, *before* the
    listening socket exists, so every worker process is forked while the
    parent holds no connection fds — a forked child inheriting a live
    client socket would keep it open and mask that client's disconnect.
    """
    before = grid.job_snapshots()
    grid.worker_pipeline()
    return None, grid.job_deltas(*before)

#: Per-process cache of namespace/config pipeline views (worker-side).
_PIPELINES: dict[tuple, ServePipeline] = {}


def _pipeline_for(namespace: str | None, config_spec: tuple | None) -> ServePipeline:
    base = grid.worker_pipeline()
    if namespace is None and not config_spec:
        return base
    key = (namespace, config_spec)
    pipe = _PIPELINES.get(key)
    if pipe is None:
        pipe = ServePipeline(
            config_from_spec(base.config, config_spec),
            store=base.store.namespaced(namespace),
        )
        _PIPELINES[key] = pipe
    return pipe


def run_job(job: dict) -> tuple:
    """Execute one serving job; returns ``(payload, deltas)``.

    The payload is the JSON-ready response body fragment; the deltas are
    the standard (profiler, store-stats, events) triple the pool parent
    folds into its accumulators.
    """
    before = grid.job_snapshots()
    pipe = _pipeline_for(job.get("namespace"), job.get("config"))
    if job["op"] == "mapping":
        mapping = pipe.mapping(
            job["graph"], job["technique"], job.get("degree_kind") or "out"
        )
        payload = mapping_summary(mapping)
    elif job["op"] == "cell":
        result = pipe.cell(job["app"], job["graph"], job["technique"])
        payload = {
            name: getattr(result, name) for name in result.__dataclass_fields__
        }
    else:
        raise ValueError(f"unknown serve job op {job['op']!r}")
    return payload, grid.job_deltas(*before)
