"""Minimal asyncio HTTP/1.1 layer for the reordering service.

Deliberately thin: the repo's dependency policy is stdlib + numpy/scipy,
so instead of a web framework this module implements exactly the subset
the service needs — request-line + header parsing, ``Content-Length``
bodies, keep-alive connections, JSON in / JSON out — over
``asyncio.start_server`` streams.

Two deliberate design points:

* :class:`Connection` owns its own read buffer (instead of leaning on
  ``StreamReader.readuntil``) so the disconnect watcher can pull bytes
  off the socket while a handler awaits a long computation *without
  losing them*: anything that arrives early stays buffered for the next
  request parse.
* :meth:`Connection.wait_disconnect` is how the serving layer notices a
  client abandoning an in-flight request — the coalescing scheduler uses
  it to drop waiters (and cancel still-queued jobs) instead of computing
  for nobody.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["HttpError", "Request", "Connection", "encode_response"]

#: Hard caps keeping one client from ballooning server memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path, _, self.query = target.partition("?")
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


def encode_response(
    status: int, payload: dict | bytes, keep_alive: bool = True, default=None
) -> bytes:
    """Serialize one JSON (or raw) response with Content-Length framing."""
    if isinstance(payload, bytes):
        body = payload
        ctype = "application/octet-stream"
    else:
        body = json.dumps(payload, default=default).encode()
        ctype = "application/json"
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + body


class Connection:
    """Buffered reader/writer for one client connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._buf = bytearray()
        self._eof = False

    async def _fill(self) -> bool:
        """Pull more bytes into the buffer; False once the peer closed."""
        if self._eof:
            return False
        data = await self.reader.read(65536)
        if not data:
            self._eof = True
            return False
        self._buf += data
        return True

    async def wait_disconnect(self) -> bool:
        """Block until the peer closes (True) or sends bytes (False).

        Early bytes stay in the buffer for the next request parse, so
        watching for disconnect never corrupts the protocol stream.
        """
        if self._eof:
            return True
        return not await self._fill()

    async def read_request(self, timeout: float | None = None) -> Request | None:
        """Parse the next request; ``None`` on a cleanly closed connection."""
        while b"\r\n\r\n" not in self._buf:
            if len(self._buf) > MAX_HEADER_BYTES:
                raise HttpError(400, "request headers too large")
            try:
                got = await asyncio.wait_for(self._fill(), timeout)
            except asyncio.TimeoutError:
                if self._buf:
                    raise HttpError(408, "timed out mid-request") from None
                return None  # idle keep-alive connection: just close
            if not got:
                if self._buf:
                    raise HttpError(400, "connection closed mid-request")
                return None
        head, _, rest = bytes(self._buf).partition(b"\r\n\r\n")
        self._buf = bytearray(rest)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, _ = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            body_len = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}") from None
        if body_len > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        while len(self._buf) < body_len:
            if not await self._fill():
                raise HttpError(400, "connection closed mid-body")
        body = bytes(self._buf[:body_len])
        del self._buf[:body_len]
        return Request(method, target, headers, body)

    async def send(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass
