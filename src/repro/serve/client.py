"""Tiny asyncio JSON client for the reordering service.

One :class:`ServeClient` holds one keep-alive connection; the load
benchmark opens N of them to model N concurrent tenants.  Responses come
back as ``(status, payload)`` so callers can assert on error paths
without exception plumbing.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["ServeClient"]


class ServeClient:
    """Single keep-alive HTTP/1.1 connection speaking JSON."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One round trip; reconnects transparently if the link dropped."""
        if self._writer is None or self._writer.is_closing():
            await self.connect()
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode() + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        parts = status_line.decode("latin-1").split(maxsplit=2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body_bytes = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, json.loads(body_bytes) if body_bytes else {}

    async def get(self, path: str) -> tuple[int, dict]:
        return await self.request("GET", path)

    async def post(self, path: str, body: dict) -> tuple[int, dict]:
        return await self.request("POST", path, body)
