"""Lightweight metrics registry: counters, gauges, histograms.

The pipeline already counts things in three unrelated shapes — the
artifact store's per-kind :class:`~repro.pipeline.store.KindStats`, the
engine throughput counters in :mod:`repro.cachesim.stats`, and the
stage profiler's :class:`~repro.pipeline.profiler.StageStats`.  The
registry is the one surface that can absorb all of them: flat
dot-separated metric names, three instrument types, and the same
snapshot / diff / merge lifecycle the store and profiler already use
for shipping worker deltas to the grid parent.

Instruments
-----------
* **counter** — monotonically increasing float/int (``inc``);
* **gauge** — last-written value (``set_gauge``); merging keeps the
  maximum, which is the useful aggregate for high-water marks;
* **histogram** — streaming count/sum/min/max plus power-of-two bucket
  counts (``observe``), cheap enough for per-span latencies.

Snapshots are plain dicts (JSON-ready); the run manifest embeds one.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "diff_metrics",
    "absorb_store_stats",
    "absorb_engine_counters",
]

#: Upper bucket bounds: powers of two from 1 µs up to ~17 min, in seconds
#: (also serviceable for byte sizes when observing in bytes).
_BUCKET_BOUNDS = tuple(2.0**e for e in range(-20, 11))


class Histogram:
    """Streaming histogram with fixed power-of-two buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def merge(self, other: dict) -> None:
        """Fold a snapshot dict produced by :meth:`as_dict` into this."""
        if not other.get("count"):
            return
        self.count += other["count"]
        self.total += other["sum"]
        self.min = min(self.min, other["min"])
        self.max = max(self.max, other["max"])


class MetricsRegistry:
    """Lock-guarded name-keyed instruments with snapshot/diff/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers -------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add to a counter (created at zero on first use)."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- readers -------------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> dict | None:
        with self._lock:
            hist = self._histograms.get(name)
            return hist.as_dict() if hist else None

    def snapshot(self) -> dict:
        """JSON-ready copy: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.as_dict() for k, h in self._histograms.items()},
            }

    # -- lifecycle -----------------------------------------------------------
    def merge(self, delta: dict) -> None:
        """Fold another snapshot (e.g. from a grid worker) into this one.

        Counters and histogram totals add; gauges keep the maximum seen
        (the aggregate that stays meaningful for high-water marks).
        """
        for name, value in delta.get("counters", {}).items():
            self.inc(name, value)
        with self._lock:
            for name, value in delta.get("gauges", {}).items():
                current = self._gauges.get(name)
                self._gauges[name] = value if current is None else max(current, value)
            for name, snap in delta.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge(snap)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def diff_metrics(after: dict, before: dict) -> dict:
    """Counter-wise difference of two snapshots (worker job deltas).

    Gauges and histograms are carried from ``after`` as-is when changed —
    gauges have no meaningful subtraction, and histogram deltas beyond
    count/sum are not needed by any consumer.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    gauges = {
        name: value
        for name, value in after.get("gauges", {}).items()
        if before.get("gauges", {}).get(name) != value
    }
    histograms = {
        name: snap
        for name, snap in after.get("histograms", {}).items()
        if before.get("histograms", {}).get(name) != snap
    }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# -- adapters for the pre-existing counter surfaces --------------------------

def absorb_store_stats(registry: MetricsRegistry, store_stats) -> None:
    """Fold a :class:`~repro.pipeline.store.StoreStats` into the registry.

    Emits ``store.<kind>.<field>`` counters (hits, misses, stores,
    quarantined, put_errors, bytes read/written) so store activity and
    span timings live behind one query surface.
    """
    for kind, stats in store_stats.snapshot().items():
        for field, value in stats.as_dict().items():
            if value:
                registry.inc(f"store.{kind}.{field}", value)


def absorb_engine_counters(registry: MetricsRegistry) -> None:
    """Fold the engine throughput counters into the registry.

    Covers the cache-simulation counters (:mod:`repro.cachesim.stats`)
    and the trace-builder counters (``repro.framework.fasttrace``),
    emitting ``engine.<domain>.<engine>.<field>``.
    """
    from repro.cachesim import stats as sim_stats
    from repro.framework.fasttrace import BUILD_STATS

    for domain, counters in (
        ("cachesim", sim_stats.snapshot()),
        ("tracebuild", BUILD_STATS.snapshot()),
    ):
        for engine, s in counters.items():
            registry.inc(f"engine.{domain}.{engine}.calls", s.calls)
            registry.inc(f"engine.{domain}.{engine}.runs", s.runs)
            registry.inc(f"engine.{domain}.{engine}.accesses", s.accesses)
            registry.inc(f"engine.{domain}.{engine}.seconds", s.seconds)


#: Process-global registry (mirrors the global tracer and profiler).
METRICS = MetricsRegistry()
