"""Run-level observability for the experiment pipeline.

Three cooperating pieces, all process-global the way the stage profiler
already is:

* :mod:`repro.observability.tracing` — :class:`Tracer`/:class:`Span`:
  nested spans with wall/CPU durations and tags, plus zero-duration
  point events, buffered per process and merged across grid workers;
* :mod:`repro.observability.metrics` — :class:`MetricsRegistry`:
  counters / gauges / histograms with the snapshot / diff / merge
  lifecycle, absorbing the store and engine counters behind one API;
* :mod:`repro.observability.run` — :class:`RunContext`: the per-run
  directory ``runs/<run_id>/`` with the append-only ``events.jsonl``
  and the atomically published ``manifest.json``.

``repro-status`` (:mod:`repro.tools.status_tool`) inspects and compares
the run directories this package writes.
"""

from repro.observability.metrics import (
    METRICS,
    MetricsRegistry,
    absorb_engine_counters,
    absorb_store_stats,
    diff_metrics,
)
from repro.observability.run import (
    MANIFEST_SCHEMA,
    RECOMPUTE_STAGES,
    RunContext,
    current_run,
    default_runs_dir,
    iter_events,
    list_runs,
    load_manifest,
    manifest_recompute_spans,
    new_run_id,
    recompute_spans,
    stage_totals,
    start_run,
)
from repro.observability.tracing import TRACER, Span, Tracer

__all__ = [
    "MANIFEST_SCHEMA",
    "METRICS",
    "RECOMPUTE_STAGES",
    "MetricsRegistry",
    "RunContext",
    "Span",
    "TRACER",
    "Tracer",
    "absorb_engine_counters",
    "absorb_store_stats",
    "current_run",
    "default_runs_dir",
    "diff_metrics",
    "iter_events",
    "list_runs",
    "load_manifest",
    "manifest_recompute_spans",
    "new_run_id",
    "recompute_spans",
    "stage_totals",
    "start_run",
]
