"""Run directories: the append-only event log and the run manifest.

A *run* is one observed experiment session (typically one grid).  It
owns a directory ``runs/<run_id>/`` holding exactly two files:

* ``events.jsonl`` — the merged span/event stream (one JSON object per
  line, appended as events arrive; worker events are folded in by the
  grid scheduler with each job result);
* ``manifest.json`` — the provenance record, written atomically (and
  rewritten on completion): config hash, engine resolution, dataset
  seeds, store hit/miss summary, git SHA, per-stage timings aggregated
  from the event stream, metrics snapshot, and any recorded failures.

:func:`start_run` opens a run and makes it current; the pipeline layers
(:mod:`repro.pipeline.grid`, the CLIs) pick the current run up through
:func:`current_run` instead of threading a handle through every call.
A failing grid still gets a manifest — ``status: "failed"`` with the
error recorded — so a dead worker is diagnosable after the fact rather
than silently dropping the run record.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import threading
import time
from pathlib import Path

from repro.observability.metrics import METRICS, absorb_engine_counters
from repro.observability.tracing import TRACER

__all__ = [
    "MANIFEST_SCHEMA",
    "RECOMPUTE_STAGES",
    "RunContext",
    "start_run",
    "current_run",
    "default_runs_dir",
    "new_run_id",
    "load_manifest",
    "iter_events",
    "list_runs",
    "stage_totals",
    "recompute_spans",
    "manifest_recompute_spans",
]

#: Manifest format version (bumped when fields change incompatibly).
MANIFEST_SCHEMA = 1

#: Pipeline stages whose spans represent real recomputation.  A warm
#: store replay must record zero of these; ``repro-status diff`` and the
#: ablation harness both gate on this count.
RECOMPUTE_STAGES = ("generate", "mapping", "relabel", "trace", "simulate", "model")

#: Environment override for the runs root directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

_RUN_COUNTER = 0
_CURRENT: "RunContext | None" = None


def default_runs_dir() -> Path:
    """Resolve the runs root (env override, else repo-local ``runs/``)."""
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / "runs"


def new_run_id() -> str:
    """Unique, sortable run id: ``<utc stamp>-<pid>-<counter>``."""
    global _RUN_COUNTER
    _RUN_COUNTER += 1
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{_RUN_COUNTER:02d}"


def _git_sha() -> str | None:
    """Best-effort commit SHA of the working tree (None outside a repo)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _kernel_report() -> dict:
    """Scaling knobs in effect for this run's kernels.

    Captures what the timing numbers in the manifest depend on beyond
    the engine choices: the resolved kernel worker count, the fused
    trace→simulate byte budget, the graph mmap threshold and the
    process's peak RSS at manifest time.  Imports are deferred — the
    pipeline imports observability at module load, not vice versa.
    """
    from repro import engines
    from repro.graph import csr
    from repro.observability.tracing import _peak_rss_kb
    from repro.pipeline import stages

    return {
        "threads": engines.resolve_kernel_threads(None),
        "threads_env": os.environ.get(engines.THREADS_ENV),
        "fused_trace_bytes": stages.fused_trace_budget(),
        "graph_mmap_bytes": csr.graph_mmap_budget(),
        "peak_rss_kb": _peak_rss_kb(),
    }


def _json_default(value):
    """Last-resort JSON encoding for numpy scalars and similar."""
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


class RunContext:
    """One observed run: event sink, provenance accumulator, manifest writer."""

    def __init__(self, run_dir: Path, run_id: str) -> None:
        self.run_dir = Path(run_dir)
        self.run_id = run_id
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.events_path = self.run_dir / "events.jsonl"
        self.manifest_path = self.run_dir / "manifest.json"
        self._lock = threading.Lock()
        # "w": a fresh run owns its directory — a reused run id (e.g. a
        # re-executed CI script) must not interleave two runs' streams.
        # Within the run's lifetime the log is append-only.
        self._events_file = open(self.events_path, "w", encoding="utf-8", buffering=1)
        self._started = time.time()
        self._stage_totals: dict[str, dict] = {}
        self._grids: list[dict] = []
        self._datasets: dict[str, dict] = {}
        self._failures: list[dict] = []
        self._config: dict | None = None
        self._store = None
        self._status = "running"
        self._closed = False
        TRACER.subscribe(self.write_event)

    # -- event sink ----------------------------------------------------------
    def write_event(self, event: dict) -> None:
        """Append one event to ``events.jsonl`` (and fold stage totals)."""
        with self._lock:
            if self._closed:
                return
            self._ingest(event)
            self._events_file.write(json.dumps(event, default=_json_default) + "\n")

    def write_events(self, events: list[dict]) -> None:
        """Append a batch of events drained from a worker process."""
        with self._lock:
            if self._closed:
                return
            lines = []
            for event in events:
                self._ingest(event)
                lines.append(json.dumps(event, default=_json_default))
            if lines:
                self._events_file.write("\n".join(lines) + "\n")
            self._events_file.flush()

    def _ingest(self, event: dict) -> None:
        """Aggregate one event into the manifest's per-stage timings.

        The manifest's machine-readable timings block is *derived from
        the event stream*, not from a parallel accumulator — the span
        log and the manifest cannot disagree.
        """
        tags = event.get("tags") or {}
        kind = tags.get("kind")
        if kind == "stage" and event.get("type") == "span":
            totals = self._stage_totals.setdefault(
                event["name"],
                {"calls": 0, "seconds": 0.0, "cpu_seconds": 0.0, "cache_hits": 0},
            )
            totals["calls"] += 1
            totals["seconds"] += event.get("wall_s", 0.0)
            totals["cpu_seconds"] += event.get("cpu_s", 0.0)
        elif kind == "cache_hit":
            totals = self._stage_totals.setdefault(
                event["name"],
                {"calls": 0, "seconds": 0.0, "cpu_seconds": 0.0, "cache_hits": 0},
            )
            totals["cache_hits"] += 1

    # -- provenance accumulation ---------------------------------------------
    def set_config(self, config) -> None:
        """Record the experiment configuration (hashed cache key)."""
        key = repr(config.cache_key())
        self._config = {
            "hash": hashlib.sha256(key.encode()).hexdigest()[:32],
            "key": key,
            "scale": getattr(config, "scale", None),
            "num_roots": getattr(config, "num_roots", None),
        }

    def attach_store(self, store) -> None:
        """Store whose statistics the final manifest summarizes."""
        self._store = store

    def add_grid(
        self,
        apps: list[str],
        datasets: list[str],
        techniques: list[str],
        workers: int | None,
        policies: list[str] | None = None,
    ) -> None:
        """Record one grid's shape and the seeds of the datasets it touches."""
        with self._lock:
            self._grids.append(
                {
                    "apps": list(apps),
                    "datasets": list(datasets),
                    "techniques": list(techniques),
                    "policies": list(policies) if policies else None,
                    "workers": workers,
                    "cells": len(apps)
                    * len(datasets)
                    * len(techniques)
                    * (len(policies) if policies else 1),
                }
            )
        try:
            from repro.graph.generators.datasets import DATASETS

            for name in datasets:
                spec = DATASETS.get(name)
                if spec is not None and name not in self._datasets:
                    self._datasets[name] = {
                        "seed": getattr(spec, "seed", None),
                        "num_vertices": getattr(spec, "num_vertices", None),
                    }
        except ImportError:  # pragma: no cover - generators always importable
            pass

    def record_failure(self, phase: str, detail: str, **tags) -> None:
        """Record a failure in the manifest and the event stream."""
        with self._lock:
            self._failures.append(
                {"phase": phase, "detail": detail, "ts": time.time(), **tags}
            )
            self._status = "failed"
        TRACER.event("failure", kind="failure", phase=phase, detail=detail, **tags)

    # -- manifest ------------------------------------------------------------
    def manifest(self) -> dict:
        """The manifest payload reflecting everything recorded so far."""
        from repro import engines

        with self._lock:
            stages = {
                name: dict(totals) for name, totals in self._stage_totals.items()
            }
            grids = list(self._grids)
            datasets = dict(self._datasets)
            failures = list(self._failures)
            status = self._status
            config = self._config
        staged = sum(t["seconds"] for t in stages.values())
        store_summary = None
        if self._store is not None:
            store_summary = {
                "directory": str(self._store.directory),
                "kinds": self._store.stats.as_dict(),
            }
        try:
            engine_report = engines.status()
        except Exception as exc:  # pragma: no cover - defensive
            engine_report = {"error": repr(exc)}
        try:
            kernel_report = _kernel_report()
        except Exception as exc:  # pragma: no cover - defensive
            kernel_report = {"error": repr(exc)}
        return {
            "manifest_schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "status": status,
            "created": self._started,
            "finished": time.time(),
            "wall_s": time.time() - self._started,
            "git_sha": _git_sha(),
            "config": config,
            "engines": engine_report,
            "kernels": kernel_report,
            "grids": grids,
            "datasets": datasets,
            "store": store_summary,
            "timings": {"staged_seconds": staged, "stages": stages},
            "metrics": METRICS.snapshot(),
            "failures": failures,
            "events_file": self.events_path.name,
            "dropped_events": TRACER.dropped,
        }

    def write_manifest(self) -> Path:
        """Atomically publish ``manifest.json`` (tmp + rename)."""
        payload = json.dumps(
            self.manifest(), indent=2, sort_keys=True, default=_json_default
        )
        tmp = self.manifest_path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        return self.manifest_path

    # -- lifecycle -----------------------------------------------------------
    def finish(self, status: str | None = None) -> Path:
        """Stop observing, absorb the engine counters, write the manifest."""
        global _CURRENT
        TRACER.unsubscribe(self.write_event)
        try:
            absorb_engine_counters(METRICS)
        except Exception:  # pragma: no cover - counters must never kill a run
            pass
        with self._lock:
            if status is not None:
                self._status = status
            elif self._status == "running":
                self._status = "ok"
        path = self.write_manifest()
        with self._lock:
            self._closed = True
            self._events_file.close()
        if _CURRENT is self:
            _CURRENT = None
        return path

    def __enter__(self) -> "RunContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._status == "running":
            self.record_failure("run", f"{exc_type.__name__}: {exc}")
        self.finish()


def start_run(
    root: Path | str | None = None, run_id: str | None = None
) -> RunContext:
    """Open a new run directory and make it the process-current run."""
    global _CURRENT
    run_id = run_id or new_run_id()
    root = Path(root) if root is not None else default_runs_dir()
    run = RunContext(root / run_id, run_id)
    _CURRENT = run
    return run


def current_run() -> RunContext | None:
    """The active run, or ``None`` when nothing is being observed."""
    return _CURRENT


# -- reading runs back (repro-status, tests) ---------------------------------

def load_manifest(run_dir: Path | str) -> dict | None:
    """Parse ``manifest.json``; ``None`` when absent or unreadable."""
    path = Path(run_dir) / "manifest.json"
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def iter_events(run_dir: Path | str):
    """Yield events from ``events.jsonl``, skipping unparseable lines.

    A run killed mid-write may leave a truncated final line; a missing
    file yields nothing — partial runs are inspectable, never fatal.
    """
    path = Path(run_dir) / "events.jsonl"
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def list_runs(root: Path | str | None = None) -> list[Path]:
    """Run directories under ``root``, newest id first (ids sort by time)."""
    root = Path(root) if root is not None else default_runs_dir()
    if not root.is_dir():
        return []
    return sorted(
        (p for p in root.iterdir() if p.is_dir()),
        key=lambda p: p.name,
        reverse=True,
    )


def recompute_spans(stages: dict[str, dict]) -> int:
    """Executed (non-cache-hit) pipeline-stage span count in a timings block.

    ``stages`` is the ``timings.stages`` mapping of a manifest (or the
    output of :func:`stage_totals`).  Zero means the run replayed
    entirely from the artifact store.
    """
    return sum(
        int(stages.get(name, {}).get("calls", 0)) for name in RECOMPUTE_STAGES
    )


def manifest_recompute_spans(run_dir: Path | str) -> int:
    """Recompute-span count for a run directory (manifest or event stream)."""
    manifest = load_manifest(run_dir)
    if manifest is not None:
        stages = (manifest.get("timings") or {}).get("stages") or {}
    else:
        stages = stage_totals(run_dir)
    return recompute_spans(stages)


def stage_totals(run_dir: Path | str) -> dict[str, dict]:
    """Per-stage wall-time totals recomputed from the raw event stream.

    The reconciliation primitive: the manifest's ``timings`` block and
    this function must agree (both fold the same events), and tests
    compare either against the live stage profiler.
    """
    totals: dict[str, dict] = {}
    for event in iter_events(run_dir):
        tags = event.get("tags") or {}
        if tags.get("kind") == "stage" and event.get("type") == "span":
            entry = totals.setdefault(
                event["name"],
                {"calls": 0, "seconds": 0.0, "cpu_seconds": 0.0, "cache_hits": 0},
            )
            entry["calls"] += 1
            entry["seconds"] += event.get("wall_s", 0.0)
            entry["cpu_seconds"] += event.get("cpu_s", 0.0)
        elif tags.get("kind") == "cache_hit":
            entry = totals.setdefault(
                event["name"],
                {"calls": 0, "seconds": 0.0, "cpu_seconds": 0.0, "cache_hits": 0},
            )
            entry["cache_hits"] += 1
    return totals
