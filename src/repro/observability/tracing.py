"""Structured span tracing for the experiment pipeline.

A *span* is one timed region of pipeline work — a stage execution, a
whole cell, a grid phase — with a name, free-form tags, wall and CPU
durations, and a parent link, so nested work reconstructs as a tree.  A
*point event* is a zero-duration observation (a cache hit, a quarantine,
a failed store publish) in the same stream.

Every process owns one :data:`TRACER`.  Spans nest through a
thread-local stack, so concurrently traced threads cannot corrupt each
other's parentage.  Events accumulate in a bounded in-memory buffer;
the grid scheduler drains each worker's buffer with every job result
and the parent folds the events into the per-run ``events.jsonl``
(:mod:`repro.observability.run`), so one run produces one merged event
stream no matter how stages were distributed across processes.

Clock model
-----------
Durations come from the monotonic clock (and :func:`time.thread_time`
for CPU time), so they never jump with wall-clock adjustments.  Event
*timestamps* are wall-anchored monotonic readings: at tracer creation
each process records the pair ``(time.time(), time.monotonic())`` and
every event timestamp is ``wall_anchor + (mono - mono_anchor)``.  Within
a process timestamps are therefore strictly consistent with measured
durations, and across processes they are comparable because every
anchor samples the same system wall clock — the reconciliation the
parent needs when merging worker events recorded on private monotonic
clocks.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

__all__ = ["Span", "Tracer", "TRACER"]

#: Buffer cap per process; beyond it the oldest events are dropped (and
#: counted) rather than growing without bound in long sessions.
MAX_BUFFERED_EVENTS = 200_000


class Span:
    """One in-flight (then finished) traced region."""

    __slots__ = (
        "name",
        "tags",
        "span_id",
        "parent_id",
        "start",
        "wall_s",
        "cpu_s",
        "max_rss_kb",
        "_mono0",
        "_cpu0",
    )

    def __init__(
        self, name: str, tags: dict, span_id: str, parent_id: str | None, start: float
    ) -> None:
        self.name = name
        self.tags = tags
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start  #: wall-anchored timestamp (seconds since epoch)
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.max_rss_kb = None
        self._mono0 = time.monotonic()
        self._cpu0 = time.thread_time()

    def finish(self) -> None:
        self.wall_s = time.monotonic() - self._mono0
        self.cpu_s = time.thread_time() - self._cpu0
        self.max_rss_kb = _peak_rss_kb()

    def as_event(self, pid: int) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": pid,
            "ts": self.start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "max_rss_kb": self.max_rss_kb,
            "tags": self.tags,
        }


def _peak_rss_kb() -> int | None:
    """Process peak RSS (KiB) at span finish; None where unavailable.

    ``ru_maxrss`` is a process-lifetime high-water mark, so per-span
    values are monotone across a process: a span's number says "the
    process had peaked at X by the time this span closed", which is
    enough to locate the stage where the peak was set (the first span
    where the value jumps).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class _SpanContext:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.finish()
        if exc_type is not None:
            span.tags = dict(span.tags, error=exc_type.__name__)
        self._tracer._pop(span)
        self._tracer._emit(span.as_event(self._tracer.pid))


class Tracer:
    """Process-local span/event recorder with a bounded buffer."""

    def __init__(self) -> None:
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._dropped = 0
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._subscribers: list = []
        self._wall_anchor = time.time()
        self._mono_anchor = time.monotonic()

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Wall-anchored monotonic timestamp (see module docstring)."""
        return self._wall_anchor + (time.monotonic() - self._mono_anchor)

    def _reanchor(self) -> None:
        """Reset for a forked child: fresh pid, anchors, buffer, sinks.

        A forked grid worker must not re-ship the parent's buffered
        events with its first job delta, and must not write into the
        parent's run-log file through an inherited subscription — its
        events travel back with job results instead.
        """
        self.pid = os.getpid()
        self._wall_anchor = time.time()
        self._mono_anchor = time.monotonic()
        self._events = []
        self._dropped = 0
        self._subscribers = []

    # -- span stack ----------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording -----------------------------------------------------------
    def span(self, name: str, **tags) -> _SpanContext:
        """Open a traced region: ``with TRACER.span("mapping", dataset="lj"):``"""
        parent = self.current_span()
        span = Span(
            name,
            tags,
            span_id=f"{self.pid:x}-{next(self._ids):x}",
            parent_id=parent.span_id if parent else None,
            start=self.now(),
        )
        return _SpanContext(self, span)

    def record_span(
        self,
        name: str,
        start: float,
        wall_s: float,
        cpu_s: float = 0.0,
        parent_id: str | None = None,
        **tags,
    ) -> str:
        """Record a completed span measured externally; returns its id.

        The context-manager form (:meth:`span`) nests through a
        thread-local stack, which cannot express work interleaved on one
        thread — an asyncio server awaits between a request's start and
        finish while other requests open their own spans.  Such callers
        time the region themselves and record it here; the event lands in
        the same stream with the same shape.
        """
        span_id = f"{self.pid:x}-{next(self._ids):x}"
        self._emit(
            {
                "type": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "pid": self.pid,
                "ts": start,
                "wall_s": wall_s,
                "cpu_s": cpu_s,
                "max_rss_kb": None,
                "tags": tags,
            }
        )
        return span_id

    def event(self, name: str, **tags) -> None:
        """Record a zero-duration point event into the stream."""
        parent = self.current_span()
        self._emit(
            {
                "type": "event",
                "name": name,
                "span_id": f"{self.pid:x}-{next(self._ids):x}",
                "parent_id": parent.span_id if parent else None,
                "pid": self.pid,
                "ts": self.now(),
                "tags": tags,
            }
        )

    def _emit(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
            if len(self._events) > MAX_BUFFERED_EVENTS:
                overflow = len(self._events) - MAX_BUFFERED_EVENTS
                del self._events[:overflow]
                self._dropped += overflow
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event)

    # -- consumption ---------------------------------------------------------
    def subscribe(self, fn) -> None:
        """Stream every future event to ``fn(event_dict)`` (run-log sink)."""
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers.append(fn)

    def unsubscribe(self, fn) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    def snapshot(self) -> list[dict]:
        """Copy of the buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        """Remove and return the buffered events (worker job deltas)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def merge(self, events: list[dict]) -> None:
        """Fold events drained from another process into this buffer."""
        with self._lock:
            self._events.extend(events)
            if len(self._events) > MAX_BUFFERED_EVENTS:
                overflow = len(self._events) - MAX_BUFFERED_EVENTS
                del self._events[:overflow]
                self._dropped += overflow

    @property
    def dropped(self) -> int:
        """Events lost to the buffer cap since the last reset."""
        with self._lock:
            return self._dropped

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0


#: Process-global tracer every subsystem records into.  Grid workers are
#: forked/spawned with a fresh buffer (the grid's worker initializer
#: drains it), and their events travel back with each job result.
TRACER = Tracer()

os.register_at_fork(after_in_child=TRACER._reanchor)
