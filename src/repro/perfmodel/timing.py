"""Cycle-level timing model driven by the cache simulator.

``cycles = instructions * base_cpi
         + (L1 misses served by L2) * l2_hit
         + (L2 misses by service class) * {l3_hit, snoop_local,
                                           snoop_remote, memory}``

all miss penalties divided by ``mlp``, the effective memory-level
parallelism of the out-of-order cores (graph traversals overlap several
outstanding misses; the model is insensitive to the exact value since it
scales baseline and reordered runs alike, but it keeps absolute speedup
magnitudes in the paper's range).

Latency defaults approximate the paper's Broadwell testbed (Section V-B):
L2 ~12 cycles, LLC ~36, in-socket snoop ~60, cross-socket snoop ~110,
DRAM ~200.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.hierarchy import CacheStats
from repro.framework.trace import AppTrace

__all__ = ["LatencyModel", "superstep_cycles", "runtime_cycles", "speedup_pct"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-event cycle costs (see module docstring)."""

    base_cpi: float = 0.3
    l2_hit: float = 12.0
    l3_hit: float = 36.0
    snoop_local: float = 60.0
    snoop_remote: float = 110.0
    memory: float = 200.0
    mlp: float = 4.0


DEFAULT_LATENCIES = LatencyModel()


def superstep_cycles(
    app_trace: AppTrace, stats: CacheStats, model: LatencyModel = DEFAULT_LATENCIES
) -> float:
    """Modelled cycles for the traced super-step."""
    bd = stats.l2_miss_breakdown
    l2_hits = stats.l1_misses - stats.l2_misses
    penalty = (
        l2_hits * model.l2_hit
        + bd["l3_hit"] * model.l3_hit
        + bd["snoop_local"] * model.snoop_local
        + bd["snoop_remote"] * model.snoop_remote
        + bd["offchip"] * model.memory
    )
    return app_trace.instructions * model.base_cpi + penalty / model.mlp


def runtime_cycles(
    app_trace: AppTrace,
    stats: CacheStats,
    model: LatencyModel = DEFAULT_LATENCIES,
    traversals: int = 1,
) -> float:
    """Whole-application cycles: super-step cycles scaled by the plan's
    work multiplier and, for root-dependent apps, the traversal count."""
    return superstep_cycles(app_trace, stats, model) * app_trace.superstep_multiplier * traversals


def speedup_pct(baseline_cycles: float, cycles: float) -> float:
    """Speed-up of ``cycles`` over ``baseline_cycles`` in percent.

    Positive = faster than baseline; negative = slowdown.  Matches the
    paper's figures, where e.g. +16.8 means 16.8% faster.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return (baseline_cycles / cycles - 1.0) * 100.0
