"""Operation-count model of reordering cost (paper Sections V-C, VI-D).

Every technique pays the same dominant cost — regenerating the CSR around
the new vertex IDs — plus a technique-specific analysis cost:

=============  =====================================================
Technique      Analysis operations
=============  =====================================================
Sort           full ``V log2 V`` sort
HubSort        classify pass + ``H log2 H`` sort of the hot set
HubSort-O      full (degree, id) pair sort + classify (> Sort)
HubCluster     two linear passes
HubCluster-O   one fused linear pass (cheapest)
DBG            degree pass + binning pass + prefix sums
BOBA           one streaming pass over the edge-endpoint stream
Gorder         per-placement affinity updates: for every vertex, its
               in/out adjacency plus the out-lists of its in-neighbours
               (hub-capped), each through a priority queue
=============  =====================================================

Costs are expressed in the same cycle domain as
:mod:`repro.perfmodel.timing`.  The per-operation constants are calibrated
so the *relative* costs land on the paper's measurements: skew-aware
analysis is 15–40% of total reordering time (Table XI's 0.74–1.09 ratios
to Sort), and Gorder — even after the paper's optimistic ÷40
parallelization credit — costs two orders of magnitude more than Sort
(Table XII's 258–1359 PR iterations to amortize vs 3.3–18.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique
from repro.reorder.boba import BOBA
from repro.reorder.compose import Composed
from repro.reorder.dbg import DBG
from repro.reorder.gorder import Gorder
from repro.reorder.hubcluster import HubCluster, HubClusterOriginal
from repro.reorder.hubsort import HubSort, HubSortOriginal
from repro.reorder.identity import Original
from repro.reorder.random_order import RandomCacheBlock, RandomVertex
from repro.reorder.sort import Sort
from repro.reorder.community_order import CommunityOrder
from repro.reorder.traversal import BFSOrder, DFSOrder, ReverseCuthillMcKee

__all__ = ["ReorderCostModel"]


def _log2(x: float) -> float:
    return float(np.log2(max(x, 2.0)))


@dataclass(frozen=True)
class ReorderCostModel:
    """Cycle costs per modelled operation (see module docstring)."""

    csr_regen_per_edge: float = 16.0  #: scatter/gather to rebuild the CSR
    pass_per_vertex: float = 1.0  #: one streaming pass over the vertices
    sort_per_key: float = 4.0  #: comparison-sort work per key per log-level
    pair_sort_per_key: float = 6.0  #: sort of materialized (degree,id) pairs
    gorder_per_update: float = 120.0  #: heap + scatter cost per affinity update
    gorder_parallel_credit: float = 40.0  #: paper's optimistic ÷40 (Sec. V-C)
    traversal_per_edge: float = 30.0  #: queue/stack cost per edge of BFS/DFS/RCM

    def analysis_cycles(self, technique: ReorderingTechnique, graph: Graph) -> float:
        """Cycles for computing the mapping (excludes CSR regeneration)."""
        n = graph.num_vertices
        if isinstance(technique, Original):
            return 0.0
        if isinstance(technique, Composed):
            # Sub-techniques re-analyze (and intermediate CSRs are rebuilt).
            total = 0.0
            for sub in technique.techniques[:-1]:
                total += self.analysis_cycles(sub, graph) + self.relabel_cycles(graph)
            return total + self.analysis_cycles(technique.techniques[-1], graph)
        if isinstance(technique, Sort):
            return n * self.pass_per_vertex + self.sort_per_key * n * _log2(n)
        if isinstance(technique, HubSortOriginal):
            return 2 * n * self.pass_per_vertex + self.pair_sort_per_key * n * _log2(n)
        if isinstance(technique, HubSort):
            degrees = graph.degrees(technique.degree_kind)
            hot = int((degrees >= graph.average_degree()).sum())
            return 2 * n * self.pass_per_vertex + self.sort_per_key * hot * _log2(hot)
        if isinstance(technique, HubClusterOriginal):
            return n * self.pass_per_vertex
        if isinstance(technique, HubCluster):
            return 2 * n * self.pass_per_vertex
        if isinstance(technique, DBG):
            return 3 * n * self.pass_per_vertex
        if isinstance(technique, BOBA):
            # One streaming pass over the edge-endpoint stream (bucketed,
            # but the work is linear either way) plus the unseen-vertex
            # append pass.
            return (graph.num_edges + n) * self.pass_per_vertex
        if isinstance(technique, (RandomVertex, RandomCacheBlock)):
            return 2 * n * self.pass_per_vertex
        if isinstance(technique, CommunityOrder):
            # A few vectorized label-propagation rounds over the edges.
            ops = float(technique.rounds * 2 * graph.num_edges + graph.num_vertices)
            return ops * self.traversal_per_edge / self.gorder_parallel_credit
        if isinstance(technique, (BFSOrder, DFSOrder, ReverseCuthillMcKee)):
            # Sequential traversals; granted the same optimistic
            # parallelization credit as Gorder for comparability.
            ops = float(n + 2 * graph.num_edges)
            return ops * self.traversal_per_edge / self.gorder_parallel_credit
        if isinstance(technique, Gorder):
            out_deg = graph.out_degrees().astype(np.float64)
            in_deg = graph.in_degrees().astype(np.float64)
            cap = max(technique.hub_cap_factor * graph.average_degree(), 16.0)
            updates = float(
                (out_deg + in_deg).sum() + (out_deg * np.minimum(out_deg, cap)).sum()
            )
            return updates * self.gorder_per_update / self.gorder_parallel_credit
        raise TypeError(f"no cost model for {type(technique).__name__}")

    def relabel_cycles(self, graph: Graph) -> float:
        """Cycles for the CSR regeneration every technique performs."""
        return (
            graph.num_edges * self.csr_regen_per_edge
            + graph.num_vertices * self.pass_per_vertex
        )

    def total_cycles(self, technique: ReorderingTechnique, graph: Graph) -> float:
        """End-to-end reordering cost in cycles."""
        if isinstance(technique, Original):
            return 0.0
        return self.analysis_cycles(technique, graph) + self.relabel_cycles(graph)


DEFAULT_COST_MODEL = ReorderCostModel()
