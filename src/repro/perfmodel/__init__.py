"""Analytical performance model.

The paper reports wall-clock speedups on a 40-thread Broadwell server.  A
pure-Python reproduction cannot time real cache effects (interpreter
overhead swamps them), so runtimes are *modelled*: the cache simulator
supplies per-level miss counts for a representative super-step, and
:mod:`repro.perfmodel.timing` converts them into cycles with configurable
hit/miss/snoop latencies and a memory-level-parallelism factor.  Reordering
costs come from the operation-count model in :mod:`repro.perfmodel.cost`,
expressed in the same cycle domain so that net speedups (Fig. 10/11) and
amortization points (Table XII) are well-defined.
"""

from repro.perfmodel.timing import LatencyModel, superstep_cycles, runtime_cycles, speedup_pct
from repro.perfmodel.cost import ReorderCostModel
from repro.perfmodel.amortization import (
    amortization_supersteps,
    net_speedup_pct,
)

__all__ = [
    "LatencyModel",
    "superstep_cycles",
    "runtime_cycles",
    "speedup_pct",
    "ReorderCostModel",
    "amortization_supersteps",
    "net_speedup_pct",
]
