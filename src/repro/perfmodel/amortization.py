"""Amortization analysis: when does reordering pay for itself?

Reordering is a preprocessing pass whose cost must be recovered through
faster traversals.  The paper studies this two ways:

* **net speed-up** (Fig. 10/11): speed-up over the baseline counting the
  reordering time inside the reordered run's cost;
* **amortization point** (Table XII): the minimum number of work units
  (PageRank iterations, SSSP traversals) after which the reordered
  execution, including reordering cost, beats the baseline.
"""

from __future__ import annotations

import math

__all__ = ["net_speedup_pct", "amortization_supersteps"]


def net_speedup_pct(
    baseline_cycles: float, cycles: float, reorder_cycles: float
) -> float:
    """Speed-up (%) counting the reordering cost against the reordered run."""
    total = cycles + reorder_cycles
    return (baseline_cycles / total - 1.0) * 100.0


def amortization_supersteps(
    baseline_unit_cycles: float, unit_cycles: float, reorder_cycles: float
) -> float:
    """Work units needed to amortize the reordering cost.

    Solves ``n * baseline >= n * reordered + reorder_cost``.  Returns
    ``inf`` when the reordered execution is not faster per unit (the cost
    can never be amortized).
    """
    gain = baseline_unit_cycles - unit_cycles
    if gain <= 0:
        return math.inf
    return reorder_cycles / gain
