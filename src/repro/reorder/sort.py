"""Sort reordering: descending-degree order for all vertices.

Sort packs hot vertices into the fewest possible cache blocks but, by
reordering every vertex at the finest possible granularity, completely
destroys the original graph structure (paper Section III-C).  In the DBG
framework it is the degenerate case of one group per unique degree
(Table V); the stable sort used here makes it exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["Sort"]


class Sort(ReorderingTechnique):
    """Stable descending sort of all vertices by degree."""

    name = "Sort"

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        order = np.argsort(-degrees, kind="stable")
        mapping = np.empty(graph.num_vertices, dtype=np.int64)
        mapping[order] = np.arange(graph.num_vertices, dtype=np.int64)
        return mapping
