"""The baseline: keep the original ordering."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique, identity_mapping

__all__ = ["Original"]


class Original(ReorderingTechnique):
    """No reordering — the paper's baseline in every comparison."""

    name = "Original"

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        return identity_mapping(graph.num_vertices)
