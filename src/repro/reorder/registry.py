"""Name-based construction of reordering techniques.

The experiment layer and the CLI refer to techniques by the names the
paper uses in its figures (``Sort``, ``HubSort``, ``HubCluster``, ``DBG``,
``Gorder``, plus the ``-O`` original implementations and the random
reorderings of Section III-B).
"""

from __future__ import annotations

from repro.reorder.base import ReorderingTechnique
from repro.reorder.boba import BOBA
from repro.reorder.dbg import DBG
from repro.reorder.gorder import Gorder
from repro.reorder.hubcluster import HubCluster, HubClusterOriginal
from repro.reorder.hubsort import HubSort, HubSortOriginal
from repro.reorder.identity import Original
from repro.reorder.random_order import RandomCacheBlock, RandomVertex
from repro.reorder.sort import Sort
from repro.reorder.traversal import BFSOrder, DFSOrder, ReverseCuthillMcKee
from repro.reorder.community_order import CommunityOrder

__all__ = ["TECHNIQUES", "SKEW_AWARE", "make_technique"]

#: Constructors for every technique, keyed by figure label.
TECHNIQUES: dict[str, type[ReorderingTechnique] | object] = {
    "Original": Original,
    "Sort": Sort,
    "HubSort": HubSort,
    "HubSort-O": HubSortOriginal,
    "HubCluster": HubCluster,
    "HubCluster-O": HubClusterOriginal,
    "DBG": DBG,
    "BOBA": BOBA,
    "Gorder": Gorder,
    "RandomVertex": RandomVertex,
    "BFS": BFSOrder,
    "DFS": DFSOrder,
    "RCM": ReverseCuthillMcKee,
    "Community": CommunityOrder,
}

#: The paper's skew-aware comparison set (Fig. 6 et al.), in figure order.
SKEW_AWARE = ["Sort", "HubSort", "HubCluster", "DBG"]


def make_technique(name: str, degree_kind: str = "out", **kwargs) -> ReorderingTechnique:
    """Instantiate a technique by its figure label.

    ``RCB-n`` labels construct :class:`RandomCacheBlock` with granularity
    ``n``; all other names look up :data:`TECHNIQUES`.
    """
    if name.startswith("RCB-"):
        return RandomCacheBlock(int(name.split("-", 1)[1]), degree_kind, **kwargs)
    if name not in TECHNIQUES:
        raise KeyError(f"unknown technique {name!r}; known: {sorted(TECHNIQUES)}")
    return TECHNIQUES[name](degree_kind, **kwargs)
