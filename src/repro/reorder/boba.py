"""BOBA: bucket-parallel first-appearance reordering.

After Drescher et al.'s *Batched Order-By-Appearance* (BOBA,
arXiv:2306.10410, see PAPERS.md): relabel vertices by their first
appearance in the edge-target stream, in one pass over the CSR.  Like
the paper's lightweight skew-aware techniques it never inspects the
full connectivity structure (the cost of Gorder); unlike them it keys
on *temporal* order rather than degree, so vertices referenced together
early land together — a locality transform closer to BFS order but at
streaming cost.

The single pass is *bucket-parallel*: the edge stream is cut into
equal chunks, each chunk finds its local first appearances
independently (``np.unique(return_index=True)``, trivially
parallelizable), and the per-bucket results are concatenated in bucket
order with first-wins deduplication.  Because every appearance in
bucket *k* precedes every appearance in bucket *k+1*, the concatenation
reproduces the global first-appearance order exactly — the result is
invariant in the bucket count, which is the parallelization story (and
:func:`boba_order` is property-tested on that invariant).  Vertices
that never appear in the stream are appended in ascending ID order.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["BOBA", "boba_order"]

#: Default edge-stream bucket size; small enough to parallelize paper-scale
#: streams, large enough that per-bucket unique overhead stays negligible.
DEFAULT_BUCKET_EDGES = 1 << 16


def boba_order(stream: np.ndarray, bucket_edges: int = DEFAULT_BUCKET_EDGES) -> np.ndarray:
    """Vertex IDs in order of first appearance in ``stream``.

    ``bucket_edges`` controls the chunking only — the returned order is
    identical for every positive value.
    """
    stream = np.asarray(stream, dtype=np.int64)
    if bucket_edges <= 0:
        raise ValueError(f"bucket_edges must be positive, got {bucket_edges}")
    if stream.size == 0:
        return np.empty(0, dtype=np.int64)
    firsts = []
    for start in range(0, stream.size, bucket_edges):
        chunk = stream[start : start + bucket_edges]
        values, first_idx = np.unique(chunk, return_index=True)
        # Local first appearances, in stream order within the bucket.
        firsts.append(values[np.argsort(first_idx, kind="stable")])
    candidates = np.concatenate(firsts)
    # First-wins dedup across buckets, preserving concatenation order.
    _, first_positions = np.unique(candidates, return_index=True)
    return candidates[np.sort(first_positions)]


class BOBA(ReorderingTechnique):
    """Order-by-appearance over the edge-endpoint stream.

    ``degree_kind`` selects which stream defines "appearance": ``"out"``
    walks the out-edge targets (the order a push traversal touches
    destination properties), ``"in"``/``"both"`` walk the in-edge
    sources (the pull-mode read stream) — matching how the degree kind
    selects the hot property for the skew-aware techniques.
    """

    name = "BOBA"
    #: Appearance order keys on stream position, not the degree
    #: distribution — structure-aware like the traversal orders.
    skew_aware = False

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        stream = (
            graph.out_targets if self.degree_kind == "out" else graph.in_sources
        )
        appeared = boba_order(stream)
        mapping = np.full(graph.num_vertices, -1, dtype=np.int64)
        mapping[appeared] = np.arange(appeared.size, dtype=np.int64)
        missing = np.flatnonzero(mapping < 0)
        mapping[missing] = appeared.size + np.arange(missing.size, dtype=np.int64)
        return mapping
