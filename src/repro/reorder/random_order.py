"""Random reordering at configurable granularity (paper Section III-B).

The paper uses random reordering to *quantify the value of the original
graph structure*: shuffling all vertices (RV) both destroys structure and
scatters hot vertices, while shuffling whole cache blocks (RCB-n) keeps the
hot-vertex footprint intact so any slowdown is attributable purely to
structure loss.  Coarser granularity (larger n) preserves more structure
and shrinks the slowdown — the observation DBG's coarse-grain groups build
on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["RandomVertex", "RandomCacheBlock", "VERTICES_PER_BLOCK"]

#: 64-byte cache blocks over 8-byte properties: 8 vertices per block
#: (paper Section II-D).
VERTICES_PER_BLOCK = 8


class RandomVertex(ReorderingTechnique):
    """RV: shuffle every vertex independently."""

    name = "RandomVertex"

    def __init__(self, degree_kind: str = "out", seed: int = 0) -> None:
        super().__init__(degree_kind)
        self.seed = seed

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.permutation(graph.num_vertices).astype(np.int64)


class RandomCacheBlock(ReorderingTechnique):
    """RCB-n: shuffle groups of ``n`` cache blocks, keeping each group intact.

    Vertices are partitioned into runs of ``n * VERTICES_PER_BLOCK``
    consecutive IDs; runs are randomly permuted but the vertices inside a
    run move together, so the number of cache blocks occupied by hot
    vertices is unchanged.
    """

    name = "RandomCacheBlock"

    def __init__(
        self, num_blocks: int = 1, degree_kind: str = "out", seed: int = 0
    ) -> None:
        super().__init__(degree_kind)
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        self.num_blocks = num_blocks
        self.seed = seed
        self.name = f"RCB-{num_blocks}"

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        n = graph.num_vertices
        run = self.num_blocks * VERTICES_PER_BLOCK
        num_runs = (n + run - 1) // run
        rng = np.random.default_rng(self.seed)
        run_order = rng.permutation(num_runs)
        # new position of run r is run_position[r]
        run_position = np.empty(num_runs, dtype=np.int64)
        run_position[run_order] = np.arange(num_runs, dtype=np.int64)

        ids = np.arange(n, dtype=np.int64)
        run_of = ids // run
        offset_in_run = ids % run
        # Runs may have unequal length only at the tail; keep it simple by
        # computing destination starts from the permuted run sizes.
        run_sizes = np.full(num_runs, run, dtype=np.int64)
        run_sizes[-1] = n - (num_runs - 1) * run
        starts_in_new_order = np.zeros(num_runs, dtype=np.int64)
        sizes_in_new_order = run_sizes[run_order]
        np.cumsum(sizes_in_new_order[:-1], out=starts_in_new_order[1:])
        run_start = starts_in_new_order[run_position[run_of]]
        return run_start + offset_in_run
