"""Community-clustering reordering (Rabbit Order's lightweight cousin).

The paper's related work cites Rabbit Order (Arai et al., IPDPS'16):
detect communities cheaply and lay each out contiguously, recovering
locality without Gorder's per-vertex greedy search.  This implementation
uses synchronous label propagation — a few vectorized rounds over the
edges — followed by a community-contiguous layout:

* communities are placed in descending size order (big communities first,
  like Rabbit Order's dendrogram flattening);
* within a community the original relative order is preserved.

Structure-aware but degree-blind: it restores community locality on
shuffled inputs yet never packs hot vertices, making it the natural
midpoint between the traversal orderings and the skew-aware family in the
extended comparison.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique, group_order_mapping

__all__ = ["CommunityOrder", "label_propagation_communities"]


def label_propagation_communities(
    graph: Graph, rounds: int = 8, seed: int = 0
) -> np.ndarray:
    """Community labels via synchronous min-label propagation with degree
    weighting.

    Each round, every vertex adopts the most *strongly connected* label
    among its (undirected) neighbourhood, ties broken toward the smaller
    label; a few rounds suffice for the coarse communities reordering
    needs.  Returns one label per vertex (not necessarily contiguous).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    src, dst = graph.edge_array()
    # Undirected view of the connectivity, plus a self-vote per vertex —
    # without it, symmetric pairs swap labels forever (the classic
    # synchronous label-propagation oscillation).
    own = np.arange(n, dtype=np.int64)
    u = np.concatenate([src, dst, own])
    v = np.concatenate([dst, src, own])
    labels = own.copy()
    for _ in range(rounds):
        # Count (vertex, neighbour-label) strengths via a composite key.
        neighbour_labels = labels[v]
        keys = u * np.int64(n) + neighbour_labels
        unique_keys, counts = np.unique(keys, return_counts=True)
        vertices = unique_keys // n
        candidate = unique_keys % n
        # For each vertex pick the label with the max count; ties to the
        # smallest label.  Sort by (vertex, -count, label) and take firsts.
        order = np.lexsort((candidate, -counts, vertices))
        vertices_sorted = vertices[order]
        first = np.empty(vertices_sorted.size, dtype=bool)
        if first.size:
            first[0] = True
            first[1:] = vertices_sorted[1:] != vertices_sorted[:-1]
        best = labels.copy()
        best[vertices_sorted[first]] = candidate[order][first]
        # Monotone adoption: take the strongest label only when it is
        # smaller than the current one.  Labels never increase, so the
        # synchronous sweep cannot oscillate (mutual pairs would otherwise
        # swap labels forever) and convergence is guaranteed.
        new_labels = np.minimum(best, labels)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels


class CommunityOrder(ReorderingTechnique):
    """Contiguous layout of label-propagation communities."""

    name = "Community"
    skew_aware = False

    def __init__(self, degree_kind: str = "out", rounds: int = 8) -> None:
        super().__init__(degree_kind)
        if rounds < 1:
            raise ValueError("rounds must be positive")
        self.rounds = rounds

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        labels = label_propagation_communities(graph, self.rounds)
        if labels.size == 0:
            return np.empty(0, dtype=np.int64)
        # Rank communities by descending size (stable), then lay vertices
        # out community-major, preserving original order inside each.
        unique, inverse, counts = np.unique(
            labels, return_inverse=True, return_counts=True
        )
        size_rank = np.empty(unique.size, dtype=np.int64)
        size_rank[np.argsort(-counts, kind="stable")] = np.arange(unique.size)
        return group_order_mapping(size_rank[inverse])
