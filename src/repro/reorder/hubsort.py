"""Hub Sorting (Zhang et al., "frequency-based clustering").

HubSort classifies vertices as hot (degree >= average) or cold, fully sorts
the hot vertices by descending degree, and preserves the original relative
order of the cold vertices.  It reduces the hot-vertex footprint as well as
Sort does but still destroys structure *among* hot vertices — which matter
most, since they are attached to 80–94% of all edges (paper Section III-C).

Two implementations are provided, mirroring the paper's Figure 5 / Table XI
comparison:

* :class:`HubSort` — the paper's own DBG-framework implementation
  (Table V): stable group layout, sequential order preserved.
* :class:`HubSortOriginal` — a faithful stand-in for the original authors'
  parallel implementation ("HubSort-O").  The original partitions the vertex
  range into per-thread chunks and builds each chunk's hot list
  independently before merging, so hot vertices are sorted only *within*
  chunks and the merge interleaves chunks; it also materializes and sorts
  (degree, id) pairs for the whole vertex set, which is why Table XI shows
  its reordering time slightly *above* Sort's.  We reproduce both the
  chunked ordering semantics and the extra full-sort work.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique, group_order_mapping

__all__ = ["HubSort", "HubSortOriginal"]


class HubSort(ReorderingTechnique):
    """DBG-framework HubSort: sort hot vertices, keep cold order (Table V)."""

    name = "HubSort"

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        avg = graph.average_degree()
        hot = degrees >= avg
        # Group IDs: hot vertices get one group per unique degree (hotter
        # first, ties in original order via stable sort); cold vertices share
        # one trailing group that preserves their original order.
        group_ids = np.where(hot, -degrees.astype(np.int64), 1)
        return group_order_mapping(group_ids)


class HubSortOriginal(ReorderingTechnique):
    """The "-O" variant: per-thread chunked hub sorting (see module docs)."""

    name = "HubSort-O"

    def __init__(self, degree_kind: str = "out", num_chunks: int = 40) -> None:
        super().__init__(degree_kind)
        if num_chunks < 1:
            raise ValueError("num_chunks must be positive")
        self.num_chunks = num_chunks

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        n = graph.num_vertices
        avg = graph.average_degree()
        hot = degrees >= avg

        # Extra work the original implementation pays: a full (degree, id)
        # pair sort over all vertices (its result is only used for the hot
        # prefix, but the cost is paid in full).
        pairs = np.rec.fromarrays([-degrees, np.arange(n)], names="deg,vid")
        pairs.argsort()

        # Chunked semantics: each chunk sorts its own hot vertices and the
        # chunks are concatenated, so the global hot region is only sorted
        # piecewise.  Round-robin assignment models the original's
        # dynamically scheduled threads completing out of order.
        chunk_of = np.arange(n, dtype=np.int64) % self.num_chunks
        # Layout: all hot vertices first (chunk-major, degree-sorted inside a
        # chunk), then all cold vertices in original order.
        hot_rank = np.where(hot, 0, 1).astype(np.int64)
        # Composite stable key: (hot?0:1, chunk, -degree) realized by sorting
        # on a structured array.
        keys = np.rec.fromarrays(
            [hot_rank, np.where(hot, chunk_of, 0), np.where(hot, -degrees, 0)],
            names="hot,chunk,deg",
        )
        order = np.argsort(keys, kind="stable", order=("hot", "chunk", "deg"))
        mapping = np.empty(n, dtype=np.int64)
        mapping[order] = np.arange(n, dtype=np.int64)
        return mapping
