"""Hub Clustering (Balaji & Lucia).

HubCluster segregates hot vertices from cold ones without sorting either
side.  That preserves structure better than HubSort and is cheaper, but by
treating all hot vertices alike it cannot keep the *hottest* vertices
cache-resident when the full hot set thrashes the LLC (paper Section III-C,
Table IV discussion).

* :class:`HubCluster` — the paper's DBG-framework implementation: exactly
  two groups, ``[A, M]`` then ``[0, A)``, both in original relative order
  (Table V).
* :class:`HubClusterOriginal` — stand-in for the original parallel
  implementation ("HubCluster-O"): per-thread chunks partition hot/cold
  locally and are concatenated, so the hot region interleaves chunk by
  chunk instead of following the global original order.  Lowest reordering
  time of all variants (single pass, no sort), as in Table XI.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique, group_order_mapping

__all__ = ["HubCluster", "HubClusterOriginal"]


class HubCluster(ReorderingTechnique):
    """DBG-framework HubCluster: two stable groups split at ``A``."""

    name = "HubCluster"

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        hot = degrees >= graph.average_degree()
        group_ids = np.where(hot, 0, 1)
        return group_order_mapping(group_ids)


class HubClusterOriginal(ReorderingTechnique):
    """The "-O" variant: per-thread chunked hub clustering (see module docs)."""

    name = "HubCluster-O"

    def __init__(self, degree_kind: str = "out", num_chunks: int = 40) -> None:
        super().__init__(degree_kind)
        if num_chunks < 1:
            raise ValueError("num_chunks must be positive")
        self.num_chunks = num_chunks

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        n = graph.num_vertices
        hot = degrees >= graph.average_degree()
        # Round-robin chunk assignment models the original's dynamically
        # scheduled threads completing out of order: the hot region becomes
        # chunk-major, interleaving vertices from across the ID range.
        chunk_of = np.arange(n, dtype=np.int64) % self.num_chunks
        group_ids = np.where(hot, 0, 1) * self.num_chunks + chunk_of
        return group_order_mapping(group_ids)
