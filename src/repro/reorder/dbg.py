"""Degree-Based Grouping — the paper's contribution (Section IV, Listing 1).

DBG partitions vertices into a small number of groups with
geometrically-spaced degree ranges and preserves the original relative
order of vertices *within* each group.  Hot vertices of similar hotness end
up packed into the same cache blocks (objective O2) while coarse groups and
stable within-group order keep most of the community structure intact
(objective O3); because nothing is sorted, the analysis is a couple of
linear passes (objective O1).

``dbg_mapping`` exposes the general binning algorithm of Listing 1: any
choice of group boundaries yields a technique, which is how the paper
expresses Sort, HubSort and HubCluster in the same framework (Table V) and
how this package implements them.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique, group_order_mapping

__all__ = ["dbg_boundaries", "dbg_mapping", "DBG"]


def dbg_boundaries(average_degree: float, max_degree: float) -> list[float]:
    """The paper's default 8 DBG group thresholds (Section V-C).

    Groups, hottest first:
    ``[32A, inf), [16A, 32A), [8A, 16A), [4A, 8A), [2A, 4A), [A, 2A),
    [A/2, A), [0, A/2)`` where ``A`` is the average degree.  Returned as the
    descending list of lower bounds ``[32A, 16A, 8A, 4A, 2A, A, A/2, 0]``;
    group ``k`` holds vertices with ``degree >= bounds[k]`` not claimed by a
    hotter group.  Note the cold vertices are split into two groups too.
    """
    a = max(average_degree, 1.0)
    bounds = [32 * a, 16 * a, 8 * a, 4 * a, 2 * a, a, a / 2.0, 0.0]
    # Drop leading groups that no vertex can reach, keeping at least [0, ...).
    while len(bounds) > 1 and bounds[0] > max_degree:
        bounds.pop(0)
    return bounds


def dbg_mapping(degrees: np.ndarray, lower_bounds: list[float]) -> np.ndarray:
    """Listing 1: bin vertices by degree range, stable within each group.

    ``lower_bounds`` must be strictly descending and end at 0; group ``k``
    covers degrees in ``[lower_bounds[k], lower_bounds[k-1])`` (group 0 is
    unbounded above).  Groups are laid out hottest-first.
    """
    degrees = np.asarray(degrees)
    bounds = np.asarray(lower_bounds, dtype=np.float64)
    if bounds.size == 0 or bounds[-1] != 0:
        raise ValueError("lower_bounds must end at 0 so every vertex has a group")
    if np.any(np.diff(bounds) >= 0):
        raise ValueError("lower_bounds must be strictly descending")
    # searchsorted over the ascending reversal gives the group index; vertices
    # with degree >= bounds[k] land in group k.
    ascending = bounds[::-1]
    group_from_cold = np.searchsorted(ascending, degrees, side="right")
    group_ids = bounds.size - group_from_cold  # 0 = hottest group
    return group_order_mapping(group_ids)


class DBG(ReorderingTechnique):
    """Degree-Based Grouping with the paper's 8 geometric groups.

    Parameters
    ----------
    degree_kind:
        Degrees used for binning (paper Table VIII: per-application).
    num_hot_groups:
        Number of geometric groups above the average degree (default 6, as
        in the paper: 32A..A); the cold range [0, A) is always split into
        [A/2, A) and [0, A/2).
    """

    name = "DBG"

    def __init__(
        self,
        degree_kind: str = "out",
        num_hot_groups: int = 6,
        boundary_scale: float = 1.0,
    ) -> None:
        super().__init__(degree_kind)
        if num_hot_groups < 1:
            raise ValueError("need at least one hot group")
        if boundary_scale <= 0:
            raise ValueError("boundary_scale must be positive")
        self.num_hot_groups = num_hot_groups
        #: Multiplies every group boundary; the hot-threshold ablation knob
        #: (0.5 treats twice as many vertices as hot, 2.0 half as many).
        self.boundary_scale = boundary_scale

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        degrees = self._degrees(graph)
        avg = graph.average_degree() * self.boundary_scale
        max_degree = float(degrees.max()) if degrees.size else 0.0
        if self.num_hot_groups == 6:
            bounds = dbg_boundaries(avg, max_degree)
        else:
            a = max(avg, 1.0)
            bounds = [a * 2.0**k for k in range(self.num_hot_groups - 1, -1, -1)]
            bounds += [a / 2.0, 0.0]
            while len(bounds) > 1 and bounds[0] > max_degree:
                bounds.pop(0)
        return dbg_mapping(degrees, bounds)
