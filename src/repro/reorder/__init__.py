"""Vertex reordering techniques (the paper's Sections III and IV).

Every technique computes a relabelling ``mapping`` with ``mapping[v]`` the
new ID of vertex ``v`` — a permutation of ``[0, num_vertices)`` — and the
graph is then rebuilt around the new IDs.  Reordering never changes the
graph itself, only the placement of per-vertex state in memory.

Skew-aware techniques (Sort, HubSort, HubCluster, DBG) reorder using only
vertex degrees; Gorder analyzes full vertex connectivity.  The paper's
central result is that DBG is the only skew-aware technique that reduces
the cache footprint of hot vertices *and* largely preserves the original
graph structure, at the lowest reordering cost.
"""

from repro.reorder.base import ReorderingTechnique, ReorderResult, group_order_mapping
from repro.reorder.identity import Original
from repro.reorder.sort import Sort
from repro.reorder.hubsort import HubSort, HubSortOriginal
from repro.reorder.hubcluster import HubCluster, HubClusterOriginal
from repro.reorder.boba import BOBA, boba_order
from repro.reorder.dbg import DBG, dbg_boundaries, dbg_mapping
from repro.reorder.random_order import RandomVertex, RandomCacheBlock
from repro.reorder.gorder import Gorder
from repro.reorder.traversal import BFSOrder, DFSOrder, ReverseCuthillMcKee
from repro.reorder.community_order import CommunityOrder
from repro.reorder.compose import Composed
from repro.reorder.registry import TECHNIQUES, make_technique

__all__ = [
    "ReorderingTechnique",
    "ReorderResult",
    "group_order_mapping",
    "Original",
    "Sort",
    "HubSort",
    "HubSortOriginal",
    "HubCluster",
    "HubClusterOriginal",
    "DBG",
    "dbg_boundaries",
    "dbg_mapping",
    "BOBA",
    "boba_order",
    "RandomVertex",
    "RandomCacheBlock",
    "Gorder",
    "BFSOrder",
    "DFSOrder",
    "ReverseCuthillMcKee",
    "CommunityOrder",
    "Composed",
    "TECHNIQUES",
    "make_technique",
]
