"""Common machinery for reordering techniques.

A technique implements :meth:`ReorderingTechnique.compute_mapping`; the base
class provides :meth:`ReorderingTechnique.apply`, which times the analysis
(mapping computation) and the CSR regeneration separately — the split the
paper's reordering-cost discussion (Sections V-C, VI-D) relies on, since CSR
regeneration dominates and is common to all techniques.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph

__all__ = [
    "ReorderingTechnique",
    "ReorderResult",
    "group_order_mapping",
    "identity_mapping",
]


def identity_mapping(num_vertices: int) -> np.ndarray:
    """The no-op mapping (baseline / original ordering)."""
    return np.arange(num_vertices, dtype=np.int64)


def group_order_mapping(group_ids: np.ndarray) -> np.ndarray:
    """Mapping that lays groups out in ascending group-ID order.

    ``group_ids[v]`` is the group of vertex ``v``; lower group IDs are placed
    first.  Within each group the *original relative order of vertices is
    preserved* (stable sort) — the invariant at the heart of DBG and of the
    DBG-framework implementations of HubSort/HubCluster/Sort (paper
    Table V).
    """
    group_ids = np.asarray(group_ids)
    order = np.argsort(group_ids, kind="stable")  # old IDs in new order
    mapping = np.empty(group_ids.size, dtype=np.int64)
    mapping[order] = np.arange(group_ids.size, dtype=np.int64)
    return mapping


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of applying a technique to a graph."""

    technique: str
    graph: Graph  #: the relabelled graph
    mapping: np.ndarray  #: mapping[old_id] = new_id
    analysis_seconds: float  #: time to compute the mapping
    relabel_seconds: float  #: time to regenerate the CSR

    @property
    def total_seconds(self) -> float:
        """End-to-end reordering time (analysis + CSR regeneration)."""
        return self.analysis_seconds + self.relabel_seconds


class ReorderingTechnique:
    """Base class for vertex reordering techniques.

    Parameters
    ----------
    degree_kind:
        Which degrees drive the reordering: ``"out"``, ``"in"`` or
        ``"both"``.  The paper reorders by out-degree for pull-dominated
        applications and by in-degree for push-dominated ones (Table VIII).
    """

    #: Short display name; subclasses override.
    name: str = "base"
    #: True for techniques that use only the degree distribution (paper's
    #: "skew-aware" class), False for structure-aware ones like Gorder.
    skew_aware: bool = True

    def __init__(self, degree_kind: str = "out") -> None:
        if degree_kind not in ("out", "in", "both"):
            raise ValueError(f"bad degree_kind: {degree_kind!r}")
        self.degree_kind = degree_kind

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        """Return the permutation ``mapping[old_id] = new_id``."""
        raise NotImplementedError

    def cache_token(self) -> tuple:
        """Stable identity for disk-cache keys: class name + parameters.

        Two instances that can produce different mappings must have
        different tokens — the token folds in every scalar attribute
        (``degree_kind``, window sizes, thresholds, ...), so e.g.
        ``Gorder('in')`` and ``Gorder('out')`` never share a cache slot.
        """
        params = tuple(
            sorted(
                (k, v)
                for k, v in vars(self).items()
                if isinstance(v, (bool, int, float, str, type(None)))
            )
        )
        return (type(self).__name__, params)

    def apply(self, graph: Graph) -> ReorderResult:
        """Compute the mapping and rebuild the graph, timing both phases."""
        t0 = time.perf_counter()
        mapping = self.compute_mapping(graph)
        t1 = time.perf_counter()
        relabelled = graph.relabel(mapping)
        t2 = time.perf_counter()
        return ReorderResult(
            technique=self.name,
            graph=relabelled,
            mapping=mapping,
            analysis_seconds=t1 - t0,
            relabel_seconds=t2 - t1,
        )

    def _degrees(self, graph: Graph) -> np.ndarray:
        return graph.degrees(self.degree_kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(degree_kind={self.degree_kind!r})"
