"""Composition of reordering techniques.

Section VII of the paper composes Gorder with DBG: applying DBG *after*
Gorder keeps most of Gorder's structure (DBG's groups are coarse and
stable) while also segregating hot vertices into a contiguous region, the
layout required by the authors' domain-specialized hardware cache scheme.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["Composed"]


class Composed(ReorderingTechnique):
    """Apply several techniques in sequence (left applied first)."""

    def __init__(self, techniques: list[ReorderingTechnique]) -> None:
        if not techniques:
            raise ValueError("need at least one technique")
        super().__init__(techniques[-1].degree_kind)
        self.techniques = list(techniques)
        self.name = "+".join(t.name for t in self.techniques)
        self.skew_aware = all(t.skew_aware for t in self.techniques)

    def cache_token(self) -> tuple:
        return (type(self).__name__, tuple(t.cache_token() for t in self.techniques))

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        combined = np.arange(graph.num_vertices, dtype=np.int64)
        current = graph
        for technique in self.techniques:
            mapping = technique.compute_mapping(current)
            combined = mapping[combined]
            if technique is not self.techniques[-1]:
                current = current.relabel(mapping)
        return combined
