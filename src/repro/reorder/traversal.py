"""Traversal-based reordering baselines (paper Section VII related work).

The paper's related-work section situates skew-aware reordering against
classic traversal/bandwidth orderings; these are the standard
representatives, included for the extended comparison benches:

* :class:`BFSOrder` / :class:`DFSOrder` — label vertices in traversal
  discovery order.  Cheap, and effective when the traversal follows
  community structure.
* :class:`ReverseCuthillMcKee` — the bandwidth-minimizing ordering of
  Cuthill & McKee (the paper's reference [23]), excellent for mesh-like
  graphs such as road networks, indifferent to degree skew.

All of them analyze structure rather than skew, so like Gorder they are
*structure-aware*; unlike Gorder their analysis is a single traversal.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["BFSOrder", "DFSOrder", "ReverseCuthillMcKee"]


def _order_to_mapping(order: list[int], n: int) -> np.ndarray:
    mapping = np.empty(n, dtype=np.int64)
    mapping[np.array(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return mapping


def _undirected_neighbors(graph: Graph, v: int) -> np.ndarray:
    return np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)])


class BFSOrder(ReorderingTechnique):
    """Breadth-first discovery order from the max-degree vertex.

    Unvisited components are seeded from the smallest unvisited ID, so the
    result is always a complete permutation.
    """

    name = "BFS"
    skew_aware = False

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        seeds = iter(np.argsort(-graph.degrees("both"), kind="stable").tolist())
        queue: deque[int] = deque()
        while len(order) < n:
            if not queue:
                seed = next(s for s in seeds if not visited[s])
                visited[seed] = True
                queue.append(seed)
                order.append(seed)
            v = queue.popleft()
            for u in np.unique(_undirected_neighbors(graph, v)).tolist():
                if not visited[u]:
                    visited[u] = True
                    order.append(u)
                    queue.append(u)
        return _order_to_mapping(order, n)


class DFSOrder(ReorderingTechnique):
    """Depth-first discovery order (iterative, from the max-degree vertex)."""

    name = "DFS"
    skew_aware = False

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        seeds = iter(np.argsort(-graph.degrees("both"), kind="stable").tolist())
        stack: list[int] = []
        while len(order) < n:
            if not stack:
                seed = next(s for s in seeds if not visited[s])
                stack.append(seed)
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order.append(v)
            neighbors = np.unique(_undirected_neighbors(graph, v))
            # Reverse so the smallest-ID neighbour is explored first.
            for u in neighbors[::-1].tolist():
                if not visited[u]:
                    stack.append(u)
        return _order_to_mapping(order, n)


class ReverseCuthillMcKee(ReorderingTechnique):
    """Reverse Cuthill–McKee bandwidth-reducing ordering.

    BFS from a minimum-degree peripheral vertex, visiting each vertex's
    neighbours in ascending-degree order, then reversing the order.
    Operates on the undirected structure, as RCM classically does.
    """

    name = "RCM"
    skew_aware = False

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        degrees = graph.degrees("both")
        visited = np.zeros(n, dtype=bool)
        order: list[int] = []
        seeds = iter(np.argsort(degrees, kind="stable").tolist())
        queue: deque[int] = deque()
        while len(order) < n:
            if not queue:
                seed = next(s for s in seeds if not visited[s])
                visited[seed] = True
                queue.append(seed)
                order.append(seed)
            v = queue.popleft()
            neighbors = np.unique(_undirected_neighbors(graph, v))
            fresh = neighbors[~visited[neighbors]]
            for u in fresh[np.argsort(degrees[fresh], kind="stable")].tolist():
                visited[u] = True
                order.append(u)
                queue.append(u)
        order.reverse()
        return _order_to_mapping(order, n)
