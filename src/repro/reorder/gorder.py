"""Gorder (Wei et al., SIGMOD'16) — structure-aware greedy reordering.

Gorder places vertices one at a time, always choosing the unplaced vertex
with the highest affinity to the ``window`` most recently placed vertices,
where affinity counts direct edges plus shared in-neighbours (the
"sibling" score).  It achieves the best cache locality of the techniques
the paper studies but its analysis cost is orders of magnitude above the
skew-aware techniques — the paper reports reordering times that dwarf
application runtime (Section VI-D), and this implementation reproduces
that story faithfully.

Implementation notes
--------------------
* A lazy max-heap keyed by affinity score.  When a vertex enters the
  placement window, the scores of every vertex it is adjacent to or shares
  an in-neighbour with are incremented (vectorised ragged gather over the
  CSR); when a vertex slides out of the window the contributions are
  subtracted.  A ``queued_key`` array suppresses redundant heap entries and
  stale entries are re-validated on pop — the standard approach for heaps
  without decrease-key.
* Sibling scores are not propagated through in-neighbours whose out-degree
  exceeds ``hub_cap_factor * average_degree``.  Production Gorder
  implementations apply the same kind of hub cut-off: a vertex with tens of
  thousands of out-neighbours makes *everything* a sibling of everything,
  which adds quadratic work while carrying almost no locality signal.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.graph.csr import Graph
from repro.reorder.base import ReorderingTechnique

__all__ = ["Gorder"]


class Gorder(ReorderingTechnique):
    """Greedy window-based reordering maximizing neighbourhood overlap."""

    name = "Gorder"
    skew_aware = False

    def __init__(
        self,
        degree_kind: str = "out",
        window: int = 5,
        hub_cap_factor: float = 32.0,
    ) -> None:
        super().__init__(degree_kind)
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.hub_cap_factor = hub_cap_factor

    def _affinity_counts(
        self, graph: Graph, v: int, hub_cap: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vertices whose score changes when ``v`` joins the window.

        A vertex ``u`` gains ``(direct edges between u and v) + (number of
        common in-neighbour paths x->u with x->v)``, with hub in-neighbours
        excluded from the sibling term (see module docs).
        """
        in_nbrs = graph.in_neighbors(v)
        parts = [graph.out_neighbors(v), in_nbrs]
        if in_nbrs.size:
            starts = graph.out_offsets[in_nbrs]
            lengths = (graph.out_offsets[in_nbrs + 1] - starts).astype(np.int64)
            lengths = np.where(lengths > hub_cap, 0, lengths)
            total = int(lengths.sum())
            if total:
                seg_starts = np.cumsum(lengths) - lengths
                idx = np.repeat(starts - seg_starts, lengths) + np.arange(total)
                parts.append(graph.out_targets[idx].astype(np.int64))
        affected = np.concatenate([p.astype(np.int64) for p in parts])
        if affected.size == 0:
            return affected, affected
        return np.unique(affected, return_counts=True)

    def compute_mapping(self, graph: Graph) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        hub_cap = max(self.hub_cap_factor * graph.average_degree(), 16.0)

        # The compiled placement kernel produces an identical permutation
        # (verified by the equivalence suite); REPRO_TRACE_ENGINE=reference
        # forces the Python loop below.
        from repro.framework import fasttrace

        try:
            if fasttrace.use_fast():
                start = int(np.argmax(graph.degrees("both")))
                order = fasttrace.gorder_place_fast(
                    graph, self.window, hub_cap, start
                )
                mapping = np.empty(n, dtype=np.int64)
                mapping[order] = np.arange(n, dtype=np.int64)
                return mapping
        except fasttrace.KernelUnavailable:
            if fasttrace.resolve_trace_engine() == "fast":
                raise
        placed = np.zeros(n, dtype=bool)
        score = np.zeros(n, dtype=np.int64)
        queued_key = np.full(n, -1, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        heap: list[tuple[int, int]] = []
        window: deque[tuple[np.ndarray, np.ndarray]] = deque()

        # Start from the max-degree vertex, as Wei et al. do.
        current = int(np.argmax(graph.degrees("both")))
        next_unplaced = 0  # cursor for refilling when the heap runs dry

        for position in range(n):
            placed[current] = True
            order[position] = current

            affected, counts = self._affinity_counts(graph, current, hub_cap)
            if affected.size:
                np.add.at(score, affected, counts)
                fresh_mask = ~placed[affected] & (score[affected] > queued_key[affected])
                fresh = affected[fresh_mask]
                fresh_scores = score[fresh]
                queued_key[fresh] = fresh_scores
                for u, s in zip(fresh.tolist(), fresh_scores.tolist()):
                    heapq.heappush(heap, (-s, u))
            window.append((affected, counts))
            if len(window) > self.window:
                old_affected, old_counts = window.popleft()
                if old_affected.size:
                    np.subtract.at(score, old_affected, old_counts)

            if position == n - 1:
                break

            current = -1
            while heap:
                neg_key, u = heapq.heappop(heap)
                if placed[u]:
                    continue
                if -neg_key != score[u]:
                    # Score decayed since queueing; requeue at today's value.
                    heapq.heappush(heap, (-int(score[u]), u))
                    queued_key[u] = score[u]
                    continue
                current = u
                break
            if current < 0:
                while placed[next_unplaced]:
                    next_unplaced += 1
                current = next_unplaced

        mapping = np.empty(n, dtype=np.int64)
        mapping[order] = np.arange(n, dtype=np.int64)
        return mapping
