"""Builders converting edge lists and networkx graphs into :class:`Graph`."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph, _build_dual_csr

__all__ = ["from_edges", "from_networkx", "to_networkx"]


def from_edges(
    num_vertices: int,
    edges: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    dedup: bool = False,
    symmetrize: bool = False,
    drop_self_loops: bool = False,
) -> Graph:
    """Build a :class:`Graph` from an ``(E, 2)`` array of directed edges.

    Parameters
    ----------
    num_vertices:
        Number of vertices; all endpoints must be in ``[0, num_vertices)``.
    edges:
        Array-like of shape ``(E, 2)`` with ``edges[i] = (src, dst)``.
    weights:
        Optional per-edge weights, aligned with ``edges``.
    dedup:
        Remove duplicate ``(src, dst)`` pairs (keeping the first weight).
    symmetrize:
        Add the reverse of every edge, turning the graph into the
        undirected-as-directed form used by e.g. the Friendster analog.
    drop_self_loops:
        Remove ``(v, v)`` edges.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (E, 2)")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (edges.shape[0],):
            raise ValueError("weights must align with edges")

    src = edges[:, 0]
    dst = edges[:, 1]
    if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
        raise ValueError("edge endpoint out of range")

    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if weights is not None:
            weights = weights[keep]

    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if weights is not None:
            weights = np.concatenate([weights, weights])

    if dedup and src.size:
        keys = src * num_vertices + dst
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        src, dst = src[unique_idx], dst[unique_idx]
        if weights is not None:
            weights = weights[unique_idx]

    return _build_dual_csr(num_vertices, src, dst, weights, stable=True)


def from_networkx(nx_graph, weight: str | None = None) -> Graph:
    """Convert a networkx (Di)Graph with integer nodes ``0..n-1`` to CSR.

    Undirected graphs are symmetrized (each undirected edge becomes two
    directed edges), matching how shared-memory graph frameworks ingest
    undirected datasets.
    """
    import networkx as nx

    n = nx_graph.number_of_nodes()
    if set(nx_graph.nodes()) != set(range(n)):
        raise ValueError("nodes must be the integers 0..n-1")
    edge_list = list(nx_graph.edges(data=True))
    edges = np.array([(u, v) for u, v, _ in edge_list], dtype=np.int64).reshape(-1, 2)
    weights = None
    if weight is not None:
        weights = np.array([data.get(weight, 1.0) for _, _, data in edge_list])
    symmetrize = not nx_graph.is_directed()
    return from_edges(n, edges, weights, symmetrize=symmetrize)


def to_networkx(graph: Graph):
    """Convert a :class:`Graph` to a ``networkx.DiGraph`` (for validation)."""
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_array()
    if graph.is_weighted:
        # out_weights is aligned with out-CSR order, which edge_array follows.
        weights = graph.out_weights
        nxg.add_weighted_edges_from(zip(src.tolist(), dst.tolist(), weights.tolist()))
    else:
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
    return nxg
