"""Graph substrate: CSR representation, builders, generators and analytics.

The paper represents graphs in Compressed Sparse Row (CSR) format with both
in-edges (for pull-based computations) and out-edges (for push-based
computations).  :class:`~repro.graph.csr.Graph` mirrors that layout with
numpy-backed arrays.
"""

from repro.graph.csr import Graph
from repro.graph.builder import from_edges, from_networkx, to_networkx
from repro.graph.validate import ValidationReport, validate_graph
from repro.graph.properties import (
    average_degree,
    hot_threshold,
    hot_mask,
    skew_summary,
    hot_vertices_per_block,
    hot_footprint_bytes,
    hot_degree_distribution,
    locality_score,
)

__all__ = [
    "Graph",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "average_degree",
    "hot_threshold",
    "hot_mask",
    "skew_summary",
    "hot_vertices_per_block",
    "hot_footprint_bytes",
    "hot_degree_distribution",
    "locality_score",
    "ValidationReport",
    "validate_graph",
]
