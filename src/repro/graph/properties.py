"""Graph analytics behind the paper's characterization tables (Tables I-IV).

The paper classifies a vertex as **hot** when its degree is greater than or
equal to the dataset's average degree ``A`` (Section II-A).  Everything in
this module is parameterized on the degree kind (``in``/``out``/``both``)
because Table I reports hot-vertex shares for in-edges and out-edges
separately and the applications use different kinds for reordering
(Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph

__all__ = [
    "average_degree",
    "hot_threshold",
    "hot_mask",
    "SkewSummary",
    "skew_summary",
    "hot_vertices_per_block",
    "hot_footprint_bytes",
    "hot_degree_distribution",
    "locality_score",
    "approximate_diameter",
    "gap_encoded_adjacency_bytes",
    "compression_ratio",
]

#: Cache-block size assumed throughout the paper (Section II-D).
CACHE_BLOCK_BYTES = 64
#: Per-vertex property size assumed in Tables II and III (8 bytes).
DEFAULT_PROPERTY_BYTES = 8


def average_degree(graph: Graph) -> float:
    """The paper's ``A``: total edges divided by total vertices."""
    return graph.average_degree()


def hot_threshold(graph: Graph) -> float:
    """Degree at or above which a vertex is classified hot (= ``A``)."""
    return graph.average_degree()


def hot_mask(graph: Graph, kind: str = "out", threshold: float | None = None) -> np.ndarray:
    """Boolean mask of hot vertices by the given degree kind."""
    if threshold is None:
        threshold = hot_threshold(graph)
    return graph.degrees(kind) >= threshold


@dataclass(frozen=True)
class SkewSummary:
    """One dataset's row of the paper's Table I.

    Attributes
    ----------
    hot_vertex_pct_in / hot_vertex_pct_out:
        Hot vertices as a percentage of all vertices, classifying hotness by
        in-degree / out-degree.  Higher skew ⇒ lower percentage.
    edge_coverage_pct_in / edge_coverage_pct_out:
        Percentage of all in-edges (out-edges) attached to hot vertices.
        Higher skew ⇒ higher percentage.
    """

    hot_vertex_pct_in: float
    edge_coverage_pct_in: float
    hot_vertex_pct_out: float
    edge_coverage_pct_out: float


def skew_summary(graph: Graph) -> SkewSummary:
    """Compute the Table I skew characterization for one graph."""
    values = {}
    for kind, suffix in (("in", "in"), ("out", "out")):
        degrees = graph.degrees(kind)
        hot = degrees >= hot_threshold(graph)
        hot_pct = 100.0 * hot.sum() / max(graph.num_vertices, 1)
        coverage_pct = 100.0 * degrees[hot].sum() / max(graph.num_edges, 1)
        values[f"hot_vertex_pct_{suffix}"] = float(hot_pct)
        values[f"edge_coverage_pct_{suffix}"] = float(coverage_pct)
    return SkewSummary(**values)


def hot_vertices_per_block(
    graph: Graph,
    kind: str = "out",
    property_bytes: int = DEFAULT_PROPERTY_BYTES,
    block_bytes: int = CACHE_BLOCK_BYTES,
) -> float:
    """Average number of hot vertices per cache block (the paper's Table II).

    Counts only blocks containing at least one hot vertex, assuming the
    Property Array is laid out in vertex-ID order with ``property_bytes``
    per vertex.  The result is bounded by ``block_bytes / property_bytes``
    (8 for the default geometry): the reduction opportunity is the gap
    between the observed value and that bound.
    """
    per_block = block_bytes // property_bytes
    if per_block <= 0:
        raise ValueError("property does not fit in a cache block")
    if graph.num_edges == 0:
        return 0.0
    hot = hot_mask(graph, kind)
    if not hot.any():
        return 0.0
    block_ids = np.flatnonzero(hot) // per_block
    num_blocks_with_hot = np.unique(block_ids).size
    return float(hot.sum() / num_blocks_with_hot)


def hot_footprint_bytes(
    graph: Graph, kind: str = "out", property_bytes: int = DEFAULT_PROPERTY_BYTES
) -> int:
    """Bytes needed to store all hot vertices' properties (Table III)."""
    return int(hot_mask(graph, kind).sum()) * property_bytes


def hot_degree_distribution(
    graph: Graph,
    kind: str = "out",
    max_range_exponent: int = 5,
    property_bytes: int = DEFAULT_PROPERTY_BYTES,
) -> list[dict]:
    """Degree distribution of *hot* vertices in geometric ranges (Table IV).

    Buckets are ``[A, 2A), [2A, 4A), ..., [2^(k-1)A, 2^k A), [2^k A, inf)``
    with ``k = max_range_exponent``.  Returns one dict per bucket with the
    share of hot vertices and the footprint in bytes.
    """
    avg = hot_threshold(graph)
    degrees = graph.degrees(kind)
    hot_degrees = degrees[degrees >= avg]
    total_hot = hot_degrees.size
    rows = []
    for k in range(max_range_exponent + 1):
        low = (2**k) * avg
        high = (2 ** (k + 1)) * avg
        if k == max_range_exponent:
            in_range = hot_degrees >= low
            label = f"[{2**k}A, inf)"
        else:
            in_range = (hot_degrees >= low) & (hot_degrees < high)
            label = f"[{2**k}A, {2**(k+1)}A)"
        count = int(in_range.sum())
        rows.append(
            {
                "range": label,
                "vertex_pct": 100.0 * count / total_hot if total_hot else 0.0,
                "footprint_bytes": count * property_bytes,
            }
        )
    return rows


def locality_score(graph: Graph, window: int = 8) -> float:
    """Fraction of edges whose endpoints are within ``window`` IDs.

    A cheap proxy for the spatio-temporal locality of the current vertex
    ordering: structured datasets in their original order score high, and
    random vertex reordering drives the score toward the value expected by
    chance.  Used in tests and in the experiment sanity checks to verify
    that structured analogs really are structured and that DBG preserves
    more structure than Sort/HubSort.
    """
    if graph.num_edges == 0:
        return 0.0
    src, dst = graph.edge_array()
    near = np.abs(src - dst) <= window
    return float(near.mean())


def _frontier_neighbors(
    offsets: np.ndarray, endpoints: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All (non-unique) neighbors of the frontier vertices, vectorized."""
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=endpoints.dtype)
    # Per-segment 0..count-1 ramps without a Python loop.
    ends = np.cumsum(counts)
    ramps = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return endpoints[np.repeat(starts, counts) + ramps]


def approximate_diameter(graph: Graph, samples: int = 4, seed: int = 0) -> int:
    """Lower-bound diameter estimate from sampled BFS eccentricities.

    Runs BFS over the *undirected* closure (out- plus in-edges) from
    ``samples`` deterministic roots and returns the largest eccentricity
    seen — the standard cheap estimator, exact enough to order graphs on
    the diameter axis (ring-window analogs vs social-network analogs
    differ by orders of magnitude).  Unreached vertices are ignored: the
    estimate describes the component the roots see.
    """
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return 0
    rng = np.random.default_rng(seed)
    roots = rng.choice(n, size=min(samples, n), replace=False)
    best = 0
    for root in roots:
        level = np.full(n, -1, dtype=np.int64)
        level[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        while frontier.size:
            reached = np.concatenate(
                [
                    _frontier_neighbors(graph.out_offsets, graph.out_targets, frontier),
                    _frontier_neighbors(graph.in_offsets, graph.in_sources, frontier),
                ]
            )
            fresh = np.unique(reached[level[reached] < 0])
            if fresh.size == 0:
                break
            depth += 1
            level[fresh] = depth
            frontier = fresh
        best = max(best, depth)
    return best


def _varint_bytes(values: np.ndarray) -> int:
    """Total LEB128-style varint bytes to encode the unsigned ``values``."""
    if values.size == 0:
        return 0
    total = int(values.size)  # every value takes at least one byte
    for shift in range(7, 64, 7):
        above = int(np.count_nonzero(values >= (np.int64(1) << shift)))
        if not above:
            break
        total += above
    return total


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed gaps to unsigned varint-friendly magnitudes."""
    values = values.astype(np.int64)
    return np.where(values >= 0, 2 * values, -2 * values - 1)


def gap_encoded_adjacency_bytes(graph: Graph, kind: str = "out") -> int:
    """Bytes of the gap-encoded adjacency under the current vertex order.

    The standard CSR compression scheme (Dubuisson's ordering study uses
    it as the figure of merit for reorderings): each vertex's neighbor
    list is sorted ascending, the first neighbor is stored as the
    zigzag-encoded difference from the vertex's own ID, the rest as
    plain consecutive gaps, and every value is varint (LEB128) encoded.
    Orders that place connected vertices close together shrink both the
    first-neighbor deltas and — via shared neighborhoods — the gaps, so
    the byte count scores *compressibility* the way
    :func:`locality_score` scores cache locality.
    """
    if graph.num_edges == 0:
        return 0
    if kind == "out":
        offsets, endpoints = graph.out_offsets, graph.out_targets
    elif kind == "in":
        offsets, endpoints = graph.in_offsets, graph.in_sources
    else:
        raise ValueError(f"unknown degree kind {kind!r}; use 'out' or 'in'")
    endpoints = endpoints.astype(np.int64)
    lengths = np.diff(offsets).astype(np.int64)
    owners = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), lengths)
    # Sort each row's neighbors ascending without a Python-level loop:
    # lexsort by (endpoint, owner) keeps rows contiguous and ordered.
    order = np.lexsort((endpoints, owners))
    sorted_endpoints = endpoints[order]
    starts = offsets[:-1][lengths > 0]
    is_first = np.zeros(sorted_endpoints.size, dtype=bool)
    is_first[starts] = True
    deltas = np.empty_like(sorted_endpoints)
    deltas[is_first] = sorted_endpoints[is_first] - owners[is_first]
    rest = ~is_first
    deltas[rest] = sorted_endpoints[rest] - np.roll(sorted_endpoints, 1)[rest]
    encoded = np.where(is_first, _zigzag(deltas), deltas)
    return _varint_bytes(encoded)


def compression_ratio(graph: Graph, kind: str = "out") -> float:
    """Raw adjacency bytes over gap-encoded bytes (higher = better order).

    Raw size assumes 4 bytes per stored endpoint (the paper's Table VIII
    vertex encoding); the denominator is
    :func:`gap_encoded_adjacency_bytes`.  An empty graph scores 1.0.
    """
    encoded = gap_encoded_adjacency_bytes(graph, kind)
    if encoded == 0:
        return 1.0
    return (4.0 * graph.num_edges) / encoded
