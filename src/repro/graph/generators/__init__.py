"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates eight skewed datasets (Table IX) and two no-skew
datasets (Table X).  We cannot redistribute or download them, so
:mod:`repro.graph.generators.datasets` provides scaled-down synthetic
analogs whose *relevant* properties — degree skew, community structure
aligned with the original vertex order, and the ratio of hot-vertex
footprint to simulated LLC capacity — are calibrated to the paper's
characterization tables.
"""

from repro.graph.generators.rmat import rmat_graph, uniform_graph
from repro.graph.generators.powerlaw import powerlaw_degree_sequence, chung_lu_graph
from repro.graph.generators.community import community_graph
from repro.graph.generators.road import road_graph
from repro.graph.generators.smallworld import smallworld_graph
from repro.graph.generators.datasets import (
    DatasetSpec,
    DATASETS,
    SKEWED_DATASETS,
    NO_SKEW_DATASETS,
    STRUCTURED_DATASETS,
    UNSTRUCTURED_DATASETS,
    load_dataset,
    dataset_table,
)

__all__ = [
    "rmat_graph",
    "uniform_graph",
    "powerlaw_degree_sequence",
    "chung_lu_graph",
    "community_graph",
    "road_graph",
    "smallworld_graph",
    "DatasetSpec",
    "DATASETS",
    "SKEWED_DATASETS",
    "NO_SKEW_DATASETS",
    "STRUCTURED_DATASETS",
    "UNSTRUCTURED_DATASETS",
    "load_dataset",
    "dataset_table",
]
