"""Road-network analog: a sparse, high-diameter planar lattice.

Stands in for the paper's USA road network (Table X): 24M vertices, 29M
edges, average degree 1.2, no degree skew, and strong locality in the
original ordering (road datasets are typically ordered by geography).  A
2-D grid in row-major order reproduces all of that at reduced scale: each
vertex points to a random subset of its lattice neighbours, tuned to hit
the target average degree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph

__all__ = ["road_graph"]


def road_graph(
    num_vertices: int,
    avg_degree: float = 1.2,
    seed: int = 0,
    shuffle: bool = False,
) -> Graph:
    """A lattice-based road-network analog.

    ``shuffle=False`` keeps row-major (geographic) vertex order.
    ``shuffle=True`` randomizes IDs: at the paper's 24M-vertex scale the
    geographic order yields no cache-resident locality (nothing fits), so
    the *scaled* analog must not carry order-locality either or reordering
    techniques would look far more disruptive than the paper's hardware
    measurements (Fig. 7 reports ±0.4% on road).  The dataset registry uses
    the shuffled form.
    """
    if avg_degree <= 0 or avg_degree > 4:
        raise ValueError("road avg_degree must be in (0, 4]")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(num_vertices)))
    n = num_vertices
    ids = np.arange(n, dtype=np.int64)
    row, col = ids // side, ids % side

    candidate_edges = []
    # Four lattice directions; vertices on the boundary simply lack some.
    for drow, dcol in ((0, 1), (0, -1), (1, 0), (-1, 0)):
        nrow, ncol = row + drow, col + dcol
        valid = (nrow >= 0) & (ncol >= 0) & (ncol < side)
        neighbor = nrow * side + ncol
        valid &= (neighbor >= 0) & (neighbor < n)
        candidate_edges.append(np.stack([ids[valid], neighbor[valid]], axis=1))
    candidates = np.concatenate(candidate_edges)

    # Keep a random subset of lattice edges to hit the target density.
    keep_prob = min(1.0, avg_degree * n / candidates.shape[0])
    keep = rng.random(candidates.shape[0]) < keep_prob
    edges = candidates[keep]
    if shuffle:
        perm = rng.permutation(n)
        edges = perm[edges]
    return from_edges(n, edges)
