"""Power-law degree sequences and Chung–Lu random graphs.

Natural graphs follow a power-law degree distribution (paper Section II-A):
most vertices have few edges, a small hot set has very many.  The analogs of
the paper's real-world datasets are built from an explicit power-law degree
sequence so the skew characterization (Table I) can be calibrated per
dataset.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph

__all__ = ["powerlaw_degree_sequence", "chung_lu_graph", "sample_edges_by_weight"]


def powerlaw_degree_sequence(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.0,
    max_degree_frac: float = 0.05,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw a Pareto-tailed degree sequence with the requested mean.

    Degrees are sampled as ``floor(dmin * u**(-1/(exponent-1)))`` (a discrete
    Pareto with tail index ``exponent``), truncated at
    ``max_degree_frac * num_vertices``, then rescaled so the empirical mean
    matches ``avg_degree``.  Smaller ``exponent`` ⇒ heavier tail ⇒ fewer,
    hotter hot vertices (higher skew).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    u = rng.random(num_vertices)
    raw = u ** (-1.0 / (exponent - 1.0))
    cap = max(2.0, max_degree_frac * num_vertices)
    raw = np.minimum(raw, cap)
    degrees = raw * (avg_degree / raw.mean())
    degrees = np.maximum(np.rint(degrees), 0).astype(np.int64)
    # Rounding shifts the mean; nudge a uniformly random subset by ±1 to hit
    # the target edge count exactly.
    target_edges = int(round(avg_degree * num_vertices))
    diff = target_edges - int(degrees.sum())
    if diff != 0:
        step = 1 if diff > 0 else -1
        candidates = np.flatnonzero(degrees + step >= 0)
        picks = rng.choice(candidates, size=abs(diff), replace=abs(diff) > candidates.size)
        np.add.at(degrees, picks, step)
    return degrees


def sample_edges_by_weight(
    weights: np.ndarray, num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample vertex IDs with probability proportional to ``weights``.

    Uses inverse-CDF sampling via ``searchsorted`` which is fast for the
    millions of draws the generators need.
    """
    cdf = np.cumsum(weights, dtype=np.float64)
    if cdf[-1] <= 0:
        raise ValueError("weights must have positive total")
    draws = rng.random(num_samples) * cdf[-1]
    return np.searchsorted(cdf, draws, side="right")


def chung_lu_graph(
    degrees: np.ndarray,
    seed: int = 0,
    shuffle_ids: bool = False,
) -> Graph:
    """A Chung–Lu style directed graph realizing ``degrees`` in expectation.

    Each vertex ``v`` emits exactly ``degrees[v]`` out-edges whose targets
    are drawn proportional to the degree sequence, which reproduces the
    in/out skew of natural graphs.  With ``shuffle_ids`` the vertex IDs are
    randomly permuted afterwards, erasing any order-locality (the generator
    itself introduces none, but shuffling also randomizes which IDs are hot).
    """
    rng = np.random.default_rng(seed)
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    num_edges = int(degrees.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    dst = sample_edges_by_weight(degrees.astype(np.float64), num_edges, rng)
    edges = np.stack([src, dst], axis=1)
    if shuffle_ids:
        perm = rng.permutation(n)
        edges = perm[edges]
    return from_edges(n, edges, drop_self_loops=True)
