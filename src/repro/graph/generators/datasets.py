"""Registry of scaled-down analogs of the paper's evaluation datasets.

Table IX of the paper lists eight skewed datasets (kr, pl, tw, sd, lj, wl,
fr, mp) and Table X two no-skew datasets (uni, road).  Each
:class:`DatasetSpec` below records the paper's reference properties and the
generator recipe of its synthetic analog.

Scaling
-------
Dataset sizes are chosen so that, with the simulated cache hierarchy of
:mod:`repro.cachesim` (default LLC of 8 KiB ≈ 1024 8-byte vertex
properties), the *hot-footprint : LLC-capacity* ratio of each analog matches
the paper's (Table III, 25 MB LLC).  That ratio is what puts each dataset
into the paper's regime: hot vertices thrash the LLC on the large datasets
but fit comfortably for lj and wl.  ``load_dataset(name, scale=...)``
multiplies vertex counts for larger or smaller studies.

Structured vs. unstructured
---------------------------
The paper labels a dataset *structured* when destroying its vertex order
causes >25% slowdown (Table IX).  The analogs reproduce this spectrum via
the community generator's ``intra_fraction``/``hub_grouping`` knobs: kr has
no structure (pure R-MAT), pl/tw/sd have mild structure, lj/wl/fr/mp have
strong structure.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import Graph
from repro.graph.generators.community import community_graph
from repro.graph.generators.rmat import rmat_graph, uniform_graph
from repro.graph.generators.road import road_graph
from repro.graph.generators.smallworld import smallworld_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SKEWED_DATASETS",
    "NO_SKEW_DATASETS",
    "STRUCTURED_DATASETS",
    "UNSTRUCTURED_DATASETS",
    "load_dataset",
    "dataset_table",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe and paper-reference metadata for one dataset analog."""

    name: str
    long_name: str
    kind: str  # "rmat" | "community" | "uniform" | "road" | "smallworld"
    num_vertices: int  # at scale=1.0
    avg_degree: float
    structured: bool
    skewed: bool = True
    params: dict = field(default_factory=dict)
    seed: int = 0
    #: Properties of the real dataset, from the paper's Tables I and IX/X.
    paper_vertices: int | None = None
    paper_edges: int | None = None
    paper_hot_pct_in: float | None = None
    paper_hot_pct_out: float | None = None

    def generate(self, scale: float = 1.0) -> Graph:
        """Instantiate the analog at the given size scale."""
        n = max(int(round(self.num_vertices * scale)), 16)
        if self.kind == "rmat":
            log_n = max(int(round(np.log2(n))), 4)
            return rmat_graph(
                log_n, avg_degree=self.avg_degree, seed=self.seed, **self.params
            )
        if self.kind == "community":
            return community_graph(
                n, avg_degree=self.avg_degree, seed=self.seed, **self.params
            )
        if self.kind == "uniform":
            return uniform_graph(n, avg_degree=self.avg_degree, seed=self.seed)
        if self.kind == "road":
            return road_graph(
                n, avg_degree=self.avg_degree, seed=self.seed, **self.params
            )
        if self.kind == "smallworld":
            return smallworld_graph(
                n, avg_degree=self.avg_degree, seed=self.seed, **self.params
            )
        raise ValueError(f"unknown dataset kind: {self.kind!r}")


_SPECS = [
    DatasetSpec(
        name="kr",
        long_name="Kron (synthetic, unstructured)",
        kind="rmat",
        num_vertices=16_384,
        avg_degree=20.0,
        structured=False,
        seed=11,
        paper_vertices=67_000_000,
        paper_edges=1_323_000_000,
        paper_hot_pct_in=9,
        paper_hot_pct_out=9,
    ),
    DatasetSpec(
        name="pl",
        long_name="PLD hyperlink analog (real, unstructured)",
        kind="community",
        num_vertices=13_000,
        avg_degree=15.0,
        structured=False,
        params={"exponent": 1.6, "max_degree_frac": 0.03, "intra_fraction": 0.35, "hub_grouping": 0.15},
        seed=12,
        paper_vertices=43_000_000,
        paper_edges=623_000_000,
        paper_hot_pct_in=16,
        paper_hot_pct_out=13,
    ),
    DatasetSpec(
        name="tw",
        long_name="Twitter analog (real, unstructured)",
        kind="community",
        num_vertices=19_000,
        avg_degree=24.0,
        structured=False,
        params={"exponent": 1.7, "max_degree_frac": 0.05, "intra_fraction": 0.35, "hub_grouping": 0.1},
        seed=13,
        paper_vertices=62_000_000,
        paper_edges=1_468_000_000,
        paper_hot_pct_in=12,
        paper_hot_pct_out=10,
    ),
    DatasetSpec(
        name="sd",
        long_name="SD hyperlink analog (real, unstructured)",
        kind="community",
        num_vertices=30_000,
        avg_degree=20.0,
        structured=False,
        params={"exponent": 1.6, "max_degree_frac": 0.05, "intra_fraction": 0.4, "hub_grouping": 0.2},
        seed=14,
        paper_vertices=95_000_000,
        paper_edges=1_937_000_000,
        paper_hot_pct_in=11,
        paper_hot_pct_out=13,
    ),
    DatasetSpec(
        name="lj",
        long_name="LiveJournal analog (real, structured)",
        kind="community",
        num_vertices=1_600,
        avg_degree=14.0,
        structured=True,
        params={
            "exponent": 1.6,
            "max_degree_frac": 0.03,
            "intra_fraction": 0.75,
            "hub_grouping": 0.55,
            "min_community": 16,
            "max_community": 128,
        },
        seed=15,
        paper_vertices=5_000_000,
        paper_edges=68_000_000,
        paper_hot_pct_in=25,
        paper_hot_pct_out=26,
    ),
    DatasetSpec(
        name="wl",
        long_name="WikiLinks analog (real, structured)",
        kind="community",
        num_vertices=5_500,
        avg_degree=9.0,
        structured=True,
        params={
            "exponent": 1.7,
            "max_degree_frac": 0.12,
            "intra_fraction": 0.7,
            "hub_grouping": 0.55,
            "min_community": 16,
            "max_community": 192,
        },
        seed=16,
        paper_vertices=18_000_000,
        paper_edges=172_000_000,
        paper_hot_pct_in=12,
        paper_hot_pct_out=20,
    ),
    DatasetSpec(
        name="fr",
        long_name="Friendster analog (real, structured)",
        kind="community",
        num_vertices=19_500,
        avg_degree=33.0,
        structured=True,
        params={"exponent": 1.6, "max_degree_frac": 0.03, "intra_fraction": 0.75, "hub_grouping": 0.4},
        seed=17,
        paper_vertices=64_000_000,
        paper_edges=2_147_000_000,
        paper_hot_pct_in=24,
        paper_hot_pct_out=18,
    ),
    DatasetSpec(
        name="mp",
        long_name="Twitter-MPI analog (real, structured)",
        kind="community",
        num_vertices=16_000,
        avg_degree=37.0,
        structured=True,
        params={"exponent": 1.7, "max_degree_frac": 0.12, "intra_fraction": 0.7, "hub_grouping": 0.45},
        seed=18,
        paper_vertices=53_000_000,
        paper_edges=1_963_000_000,
        paper_hot_pct_in=10,
        paper_hot_pct_out=12,
    ),
    DatasetSpec(
        name="uni",
        long_name="Uniform (synthetic, no skew)",
        kind="uniform",
        num_vertices=20_000,
        avg_degree=20.0,
        structured=False,
        skewed=False,
        seed=19,
        paper_vertices=50_000_000,
        paper_edges=1_000_000_000,
    ),
    DatasetSpec(
        name="road",
        long_name="USA road network analog (real, no skew)",
        kind="road",
        num_vertices=24_000,
        avg_degree=1.2,
        # Shuffled IDs: the 24M-vertex original's geographic order yields no
        # cache-resident locality, so the scaled analog must not carry order
        # locality either (see repro.graph.generators.road).
        structured=False,
        skewed=False,
        params={"shuffle": True},
        seed=20,
        paper_vertices=24_000_000,
        paper_edges=29_000_000,
    ),
    # -- diameter-axis analogs (Satav et al., arXiv:2111.12281) -------------
    # Same generator, same degree skew, opposite ends of the diameter
    # spectrum: the window fraction is the only knob that differs.  Not
    # part of the paper's Table IX/X grid — used by the diameter
    # ablation and the ``repro-ablate`` full suite.
    DatasetSpec(
        name="swl",
        long_name="Small-world, low diameter (synthetic, skewed)",
        kind="smallworld",
        num_vertices=10_000,
        avg_degree=12.0,
        structured=False,
        params={"window_frac": 0.5, "exponent": 1.7},
        seed=29,
    ),
    DatasetSpec(
        name="swh",
        long_name="Small-world, high diameter (synthetic, skewed)",
        kind="smallworld",
        num_vertices=10_000,
        avg_degree=12.0,
        structured=True,
        params={"window_frac": 0.005, "exponent": 1.7},
        seed=29,
    ),
]

#: All dataset analogs by short name.
DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}
#: The eight skewed datasets of the paper's main evaluation (Table IX order).
SKEWED_DATASETS = ["kr", "pl", "tw", "sd", "lj", "wl", "fr", "mp"]
#: The two no-skew datasets (Table X).
NO_SKEW_DATASETS = ["uni", "road"]
#: Paper Table IX's structured/unstructured split of the skewed datasets.
STRUCTURED_DATASETS = ["lj", "wl", "fr", "mp"]
UNSTRUCTURED_DATASETS = ["kr", "pl", "tw", "sd"]


@functools.lru_cache(maxsize=32)
def _load_cached(name: str, scale: float, weighted: bool) -> Graph:
    spec = DATASETS[name]
    graph = spec.generate(scale)
    if weighted:
        rng = np.random.default_rng(spec.seed + 1_000_003)
        weights = rng.integers(1, 64, size=graph.num_edges).astype(np.float64)
        src, dst = graph.edge_array()
        from repro.graph.builder import from_edges

        graph = from_edges(graph.num_vertices, np.stack([src, dst], axis=1), weights)
    return graph


def load_dataset(name: str, scale: float = 1.0, weighted: bool = False) -> Graph:
    """Instantiate (and memoize) a dataset analog.

    Parameters
    ----------
    name:
        One of the Table IX/X short names (``kr``, ``pl``, ..., ``road``).
    scale:
        Vertex-count multiplier relative to the calibrated default size.
    weighted:
        Attach deterministic random integer edge weights in [1, 64), as the
        SSSP evaluation needs.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return _load_cached(name, float(scale), bool(weighted))


def dataset_table(scale: float = 1.0) -> list[dict]:
    """Rows of the reproduction's Table IX/X: analog vs. paper properties."""
    rows = []
    for name in SKEWED_DATASETS + NO_SKEW_DATASETS:
        spec = DATASETS[name]
        graph = load_dataset(name, scale)
        rows.append(
            {
                "dataset": name,
                "long_name": spec.long_name,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "avg_degree": round(graph.average_degree(), 2),
                "structured": spec.structured,
                "skewed": spec.skewed,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "paper_avg_degree": (
                    round(spec.paper_edges / spec.paper_vertices, 1)
                    if spec.paper_edges
                    else None
                ),
            }
        )
    return rows
