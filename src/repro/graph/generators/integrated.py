"""Generation-integrated reordering (paper Section VIII-A).

The paper observes that regenerating the CSR *dominates* reordering cost
and proposes integrating skew-aware reordering with dataset generation to
avoid it.  DBG makes this trivially possible: its mapping is a pure
function of the degree sequence, which a generator knows *before* it
materializes any CSR.  So instead of

    generate -> build CSR -> analyze degrees -> rebuild CSR   (post-hoc)

the integrated pipeline does

    generate -> analyze degree sequence -> relabel the raw edge stream ->
    build CSR once                                            (integrated)

paying one CSR construction instead of two.  :func:`generate_dbg_ordered`
implements that for the community generator and reports both paths' wall
times so the saving is measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph
from repro.graph.generators.community import community_edge_stream
from repro.reorder.dbg import dbg_boundaries, dbg_mapping

__all__ = ["IntegratedResult", "generate_dbg_ordered"]


@dataclass(frozen=True)
class IntegratedResult:
    """A DBG-ordered graph plus the cost comparison of both pipelines."""

    graph: Graph  #: DBG-ordered at birth
    mapping: np.ndarray  #: generator-order -> final-order permutation
    integrated_seconds: float  #: generate + bin + single CSR build
    posthoc_seconds: float  #: generate + CSR build + reorder + CSR rebuild

    @property
    def saving_fraction(self) -> float:
        """Fraction of the post-hoc pipeline's time saved."""
        if self.posthoc_seconds <= 0:
            return 0.0
        return 1.0 - self.integrated_seconds / self.posthoc_seconds


def generate_dbg_ordered(
    num_vertices: int,
    avg_degree: float,
    compare_posthoc: bool = True,
    **community_kwargs,
) -> IntegratedResult:
    """Generate a community graph already in DBG order.

    Accepts the same keyword arguments as
    :func:`repro.graph.generators.community.community_graph`.  When
    ``compare_posthoc`` is true the conventional generate-then-reorder
    pipeline is also executed on the same stream for the timing
    comparison.  (The two orderings can differ microscopically where
    dropped self-loops shift a vertex across a group boundary; packing and
    structure metrics are equivalent.)
    """
    t0 = time.perf_counter()
    src, dst, degrees = community_edge_stream(
        num_vertices, avg_degree, **community_kwargs
    )
    # DBG needs only the degree sequence — available pre-CSR.  Degrees here
    # are out-degrees by construction (each vertex emits degree[v] edges).
    average = degrees.mean() if degrees.size else 0.0
    bounds = dbg_boundaries(average, float(degrees.max()) if degrees.size else 0.0)
    mapping = dbg_mapping(degrees, bounds)
    edges = np.stack([mapping[src], mapping[dst]], axis=1)
    graph = from_edges(num_vertices, edges, drop_self_loops=True)
    integrated_seconds = time.perf_counter() - t0

    posthoc_seconds = 0.0
    if compare_posthoc:
        t0 = time.perf_counter()
        src2, dst2, _ = community_edge_stream(
            num_vertices, avg_degree, **community_kwargs
        )
        plain = from_edges(
            num_vertices, np.stack([src2, dst2], axis=1), drop_self_loops=True
        )
        mapping2 = dbg_mapping(plain.out_degrees(), bounds)
        plain.relabel(mapping2)
        posthoc_seconds = time.perf_counter() - t0

    return IntegratedResult(graph, mapping, integrated_seconds, posthoc_seconds)
