"""Community-structured power-law graphs.

Real-world graph datasets "often feature clusters of highly interconnected
vertices ... captured by vertex ordering within a graph dataset by placing
vertices from the same community nearby in the memory space" (paper
Section II-A).  This generator reproduces exactly that: vertices are grouped
into contiguous-ID communities, a power-law degree sequence supplies the
skew, and an ``intra_fraction`` of each vertex's edges stay inside its own
community.  The original vertex order therefore carries spatio-temporal
locality that reordering can destroy — the property the paper's structured
datasets (lj, wl, fr, mp) exhibit and its Random-Reordering study (Fig. 3)
quantifies.

Two knobs calibrate a dataset analog:

* ``intra_fraction`` — how much of the graph's connectivity respects the
  community boundaries (higher ⇒ more structure ⇒ bigger slowdown when the
  order is destroyed);
* ``hub_grouping`` — how strongly high-degree vertices cluster at the front
  of their community in the original order (higher ⇒ more hot vertices per
  cache block in the baseline, Table II).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph
from repro.graph.generators.powerlaw import (
    powerlaw_degree_sequence,
    sample_edges_by_weight,
)

__all__ = ["community_sizes", "community_graph"]


def community_sizes(
    num_vertices: int,
    min_size: int,
    max_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Power-law community sizes covering exactly ``num_vertices``."""
    if min_size < 1 or max_size < min_size:
        raise ValueError("need 1 <= min_size <= max_size")
    sizes: list[int] = []
    remaining = num_vertices
    while remaining > 0:
        # Pareto(1.5)-distributed sizes clipped to [min_size, max_size].
        size = int(min_size * rng.random() ** (-1.0 / 1.5))
        size = min(size, max_size, remaining)
        sizes.append(size)
        remaining -= size
    return np.array(sizes, dtype=np.int64)


def _group_hubs(
    degrees: np.ndarray,
    offsets: np.ndarray,
    hub_grouping: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Permute degrees within each community so hubs cluster at the front.

    ``hub_grouping`` in [0, 1] interpolates between a random within-community
    order (0) and a strict degree-descending order (1) by sorting on a noisy
    rank key.
    """
    if hub_grouping <= 0:
        return degrees
    out = degrees.copy()
    num_communities = offsets.size - 1
    for c in range(num_communities):
        lo, hi = offsets[c], offsets[c + 1]
        members = out[lo:hi]
        size = members.size
        if size <= 1:
            continue
        degree_rank = np.empty(size)
        degree_rank[np.argsort(-members, kind="stable")] = np.arange(size)
        noise_rank = rng.permutation(size)
        key = hub_grouping * degree_rank + (1.0 - hub_grouping) * noise_rank
        out[lo:hi] = members[np.argsort(key, kind="stable")]
    return out


def community_edge_stream(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.0,
    intra_fraction: float = 0.6,
    min_community: int = 24,
    max_community: int = 512,
    hub_grouping: float = 0.0,
    max_degree_frac: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The raw ``(src, dst, degrees)`` stream behind :func:`community_graph`.

    Exposed separately so generation-integrated reordering (paper Section
    VIII-A) can relabel the stream *before* the one and only CSR build.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    sizes = community_sizes(num_vertices, min_community, max_community, rng)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    comm_of = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)

    degrees = powerlaw_degree_sequence(
        num_vertices, avg_degree, exponent, max_degree_frac, rng
    )
    degrees = _group_hubs(degrees, offsets, hub_grouping, rng)

    intra_counts = rng.binomial(degrees, intra_fraction)
    inter_counts = degrees - intra_counts

    # Intra-community edges: sample per community from the community's own
    # degree-weighted distribution.
    intra_src_parts: list[np.ndarray] = []
    intra_dst_parts: list[np.ndarray] = []
    weights = degrees.astype(np.float64) + 0.5  # +0.5 lets degree-0 vertices be targets
    for c in range(sizes.size):
        lo, hi = offsets[c], offsets[c + 1]
        count = int(intra_counts[lo:hi].sum())
        if count == 0:
            continue
        members = np.arange(lo, hi, dtype=np.int64)
        src = np.repeat(members, intra_counts[lo:hi])
        dst = lo + sample_edges_by_weight(weights[lo:hi], count, rng)
        intra_src_parts.append(src)
        intra_dst_parts.append(dst)

    inter_src = np.repeat(np.arange(num_vertices, dtype=np.int64), inter_counts)
    inter_dst = sample_edges_by_weight(weights, inter_src.size, rng)

    src = np.concatenate(intra_src_parts + [inter_src]) if intra_src_parts else inter_src
    dst = np.concatenate(intra_dst_parts + [inter_dst]) if intra_dst_parts else inter_dst
    return src, dst, degrees


def community_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.0,
    intra_fraction: float = 0.6,
    min_community: int = 24,
    max_community: int = 512,
    hub_grouping: float = 0.0,
    max_degree_frac: float = 0.05,
    seed: int = 0,
) -> Graph:
    """Generate a community-structured power-law graph.

    Every vertex ``v`` emits ``degree[v]`` out-edges; an expected
    ``intra_fraction`` of them target vertices of ``v``'s own community
    (degree-weighted within the community), the rest target the whole graph
    (degree-weighted globally).  Communities occupy contiguous vertex-ID
    ranges, so the returned graph's *original ordering is the structured
    ordering*.
    """
    src, dst, _ = community_edge_stream(
        num_vertices,
        avg_degree,
        exponent,
        intra_fraction,
        min_community,
        max_community,
        hub_grouping,
        max_degree_frac,
        seed,
    )
    edges = np.stack([src, dst], axis=1)
    return from_edges(num_vertices, edges, drop_self_loops=True)
