"""Skewed ring graphs with a tunable diameter.

Satav et al. (arXiv:2111.12281) show that lightweight reordering's
benefit depends on graph *diameter*: low-diameter graphs (social/web)
profit, high-diameter graphs (road-like) do not.  None of the existing
generators can sweep that axis — R-MAT/Chung-Lu analogs are all
low-diameter, the road lattice is all high-diameter — so this generator
interpolates: vertices sit on a ring, out-degrees follow a power law
(the skew DBG needs), and every edge lands inside a ring window of
``window_frac * n`` vertices.  A wide window is a Chung-Lu-like
low-diameter graph; a narrow window forces long shortest paths
(diameter ~ n / (2 * window)) while keeping the same degree skew.

A narrow window also gives the *original* ordering strong locality
(neighbours are ring-close), which is exactly the regime where
degree-based packing stops paying — the mechanism behind Satav's
observation that the techniques' wins concentrate on low-diameter
inputs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph
from repro.graph.generators.powerlaw import powerlaw_degree_sequence

__all__ = ["smallworld_graph"]


def smallworld_graph(
    num_vertices: int,
    avg_degree: float = 12.0,
    window_frac: float = 0.5,
    exponent: float = 1.7,
    max_degree_frac: float = 0.05,
    seed: int = 0,
) -> Graph:
    """A power-law ring graph whose diameter is set by ``window_frac``.

    Parameters
    ----------
    window_frac:
        Fraction of the ring an edge may span (clamped to one hop
        minimum).  ``0.5`` reaches the whole ring (minimal diameter);
        ``0.005`` makes every edge local, pushing the diameter toward
        ``1 / window_frac`` hops.
    exponent, max_degree_frac:
        Passed to :func:`powerlaw_degree_sequence` — the degree skew is
        independent of the diameter knob by construction.
    """
    if not 0.0 < window_frac <= 1.0:
        raise ValueError(f"window_frac must be in (0, 1], got {window_frac}")
    n = int(num_vertices)
    if n < 4:
        raise ValueError("smallworld_graph needs at least 4 vertices")
    rng = np.random.default_rng(seed)
    degrees = powerlaw_degree_sequence(
        n, avg_degree, exponent=exponent, max_degree_frac=max_degree_frac, rng=rng
    )
    num_edges = int(degrees.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # Signed ring offsets within the window, never zero (no self loops).
    window = max(1, int(round(window_frac * n / 2.0)))
    magnitude = rng.integers(1, window + 1, size=num_edges)
    sign = rng.integers(0, 2, size=num_edges) * 2 - 1
    dst = (src + sign * magnitude) % n
    return from_edges(n, np.stack([src, dst], axis=1))
