"""R-MAT (recursive matrix) graph generation.

The paper's ``kr`` dataset is a Kronecker/R-MAT graph (Table IX cites the
GAP benchmark suite) and its ``uni`` no-skew dataset is generated "using
R-MAT methodology with parameter values of A=B=C=25" (Table X).  Both are
reproduced here with a vectorised recursive-quadrant sampler.

R-MAT recursively subdivides the adjacency matrix into four quadrants with
probabilities ``a`` (top-left), ``b`` (top-right), ``c`` (bottom-left) and
``d = 1 - a - b - c`` and drops each edge into a quadrant at every level.
``a > d`` yields power-law degree skew; ``a = b = c = d`` yields a uniform
(Erdős–Rényi-like) degree distribution.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph

__all__ = ["rmat_edges", "rmat_graph", "uniform_graph"]

#: Graph500/Kron parameters, used for the ``kr`` analog.
KRON_PARAMS = (0.57, 0.19, 0.19)


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``num_edges`` directed edges over ``2**scale`` vertices."""
    if rng is None:
        rng = np.random.default_rng(0)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        draws = rng.random(num_edges)
        # Quadrant thresholds: [0,a) TL, [a,a+b) TR, [a+b,a+b+c) BL, rest BR.
        right = (draws >= a) & (draws < a + b) | (draws >= a + b + c)
        bottom = draws >= a + b
        bit = np.int64(1) << (scale - 1 - level)
        src += bottom * bit
        dst += right * bit
    return np.stack([src, dst], axis=1)


def rmat_graph(
    scale: int,
    avg_degree: float = 20.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    drop_self_loops: bool = True,
) -> Graph:
    """An R-MAT graph with ``2**scale`` vertices.

    With the default (Graph500) parameters this produces a skewed,
    completely *unstructured* graph: vertex IDs carry no community
    locality, matching the paper's synthetic ``kr`` dataset.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = int(round(avg_degree * n))
    edges = rmat_edges(scale, num_edges, a, b, c, rng)
    # Scramble IDs so that the implicit high-degree-at-low-ID bias of the
    # recursive construction does not masquerade as structure.
    perm = rng.permutation(n)
    edges = perm[edges]
    return from_edges(n, edges, drop_self_loops=drop_self_loops)


def uniform_graph(num_vertices: int, avg_degree: float = 20.0, seed: int = 0) -> Graph:
    """A uniform-degree random graph (the paper's ``uni`` dataset).

    Equivalent to R-MAT with ``A = B = C = D = 0.25``: every edge picks its
    endpoints uniformly at random, so there is neither degree skew nor
    structure.
    """
    rng = np.random.default_rng(seed)
    num_edges = int(round(avg_degree * num_vertices))
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    edges = np.stack([src, dst], axis=1)
    return from_edges(num_vertices, edges, drop_self_loops=True)
