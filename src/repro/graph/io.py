"""Graph persistence: plain edge-list text files and compact ``.npz``.

The ``.npz`` form stores the dual CSR directly so that expensive generated
datasets (and their reordered variants) can be cached on disk between
experiment runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import Graph

__all__ = ["save_npz", "load_npz", "save_edge_list", "load_edge_list"]


def save_npz(graph: Graph, path: str | os.PathLike) -> None:
    """Save a graph's dual CSR (and weights, if any) to ``path``."""
    arrays = {
        "out_offsets": graph.out_offsets,
        "out_targets": graph.out_targets,
        "in_offsets": graph.in_offsets,
        "in_sources": graph.in_sources,
    }
    if graph.is_weighted:
        arrays["out_weights"] = graph.out_weights
        arrays["in_weights"] = graph.in_weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str | os.PathLike) -> Graph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(path) as data:
        return Graph(
            data["out_offsets"],
            data["out_targets"],
            data["in_offsets"],
            data["in_sources"],
            data["out_weights"] if "out_weights" in data else None,
            data["in_weights"] if "in_weights" in data else None,
        )


def save_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``src dst [weight]`` lines, one per edge, preceded by a header.

    The header line is ``# num_vertices <n>`` so isolated vertices at the
    high end of the ID range survive a round-trip.
    """
    src, dst = graph.edge_array()
    with open(path, "w") as handle:
        handle.write(f"# num_vertices {graph.num_vertices}\n")
        if graph.is_weighted:
            for s, d, w in zip(src.tolist(), dst.tolist(), graph.out_weights.tolist()):
                handle.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src.tolist(), dst.tolist()):
                handle.write(f"{s} {d}\n")


def load_edge_list(path: str | os.PathLike) -> Graph:
    """Read a file written by :func:`save_edge_list` (or any src-dst list)."""
    num_vertices = None
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "num_vertices":
                    num_vertices = int(parts[1])
                continue
            parts = line.split()
            edges.append((int(parts[0]), int(parts[1])))
            if len(parts) > 2:
                weights.append(float(parts[2]))
    edge_arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
    if num_vertices is None:
        num_vertices = int(edge_arr.max()) + 1 if edge_arr.size else 0
    weight_arr = np.array(weights) if weights else None
    if weight_arr is not None and weight_arr.size != edge_arr.shape[0]:
        raise ValueError("some edges have weights and some do not")
    return from_edges(num_vertices, edge_arr, weight_arr)
