"""Fast-path graph-structure engines: compiled kernels + dispatch.

PR 1 compiled the cache simulator and PR 2 the trace constructors, which
left ``Graph.relabel`` — two O(E log E) stable ``argsort`` passes per
technique per dataset — as the dominant stage of a cold grid cell.  This
module completes the compiled-engine trilogy on the graph layer via
``_fastgraph.c`` (built through the shared machinery in
:mod:`repro._compile`):

* :func:`relabel_arrays` — permutation relabel: scatter each old
  vertex's edge block straight into the slot range its new id owns
  (offsets prefix-summed from permuted degree counts), fusing the
  reference's ``edge_array`` expansion, mapping gather and both stable
  sorts into one O(E) pass;
* :func:`build_csr_arrays` — dual-CSR build from parallel edge arrays:
  a stable counting-sort placement replacing both stable ``argsort``
  calls in :func:`repro.graph.csr._build_dual_csr`.

Both kernels are bit-identical to their numpy references (the
equivalence suites enforce it) and preserve the canonical-representation
guarantee: the in-CSR is derived from the out-CSR edge order exactly as
the reference's stable by-target sort does.  Dispatch follows the
simulator/trace contract: ``auto`` (kernel when a C compiler is
available, else reference), ``fast`` (kernel or error) or ``reference``,
selectable per call and campaign-wide via ``REPRO_GRAPH_ENGINE``.

This module deliberately traffics in raw CSR arrays, not
:class:`~repro.graph.csr.Graph` instances, so :mod:`repro.graph.csr`
can dispatch to it without a circular import.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro._compile import KernelUnavailable, LazyKernel

__all__ = [
    "KernelUnavailable",
    "GRAPH_ENGINES",
    "resolve_graph_engine",
    "fast_available",
    "kernel_unavailable_reason",
    "use_fast",
    "resolve_threads",
    "relabel_arrays",
    "build_csr_arrays",
]

#: Recognized graph-structure engines (mirrors ``cachesim.ENGINES``).
GRAPH_ENGINES = ("auto", "fast", "fast-threaded", "reference")

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)


def _configure(lib: ctypes.CDLL) -> None:
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32
    lib.repro_relabel.argtypes = [
        _I64, _I32, _F64, _I32, i64, _I64, _I32, _F64, _I64, _I32, _F64,
    ]
    lib.repro_relabel.restype = i32
    lib.repro_build_csr.argtypes = [
        _I64, _I64, _F64, i64, i64, _I64, _I32, _F64, _I64, _I32, _F64,
    ]
    lib.repro_build_csr.restype = i32
    lib.repro_relabel_threaded.argtypes = [
        _I64, _I32, _F64, _I32, i64, _I64, _I32, _F64, _I64, _I32, _F64, i32,
    ]
    lib.repro_relabel_threaded.restype = i32
    lib.repro_build_csr_threaded.argtypes = [
        _I64, _I64, _F64, i64, i64, _I64, _I32, _F64, _I64, _I32, _F64, i32,
    ]
    lib.repro_build_csr_threaded.restype = i32


_KERNEL = LazyKernel(
    Path(__file__).with_name("_fastgraph.c"),
    "fastgraph",
    _configure,
    flags=("-pthread",),
)


def resolve_graph_engine(engine: str | None = None) -> str:
    """Pick the engine: explicit arg > ``REPRO_GRAPH_ENGINE`` > auto.

    Delegates to the unified registry (:func:`repro.engines.resolve`,
    domain ``"graph"``); unknown values raise, never fall back silently.
    """
    from repro import engines

    return engines.resolve("graph", engine)


def fast_available() -> bool:
    """Whether the compiled graph kernels can be used in this environment."""
    return _KERNEL.available()


def kernel_unavailable_reason() -> str | None:
    """Why ``fast_available()`` is False (``None`` when it is True)."""
    return _KERNEL.unavailable_reason()


def _reset_kernel_cache() -> None:
    """Forget the cached load result (test hook)."""
    _KERNEL.reset()


def use_fast(engine: str | None = None) -> bool:
    """Resolve dispatch: True to run the kernel, False for the reference.

    Raises :class:`KernelUnavailable` when ``fast`` (or ``fast-threaded``)
    is requested explicitly but the kernel cannot be built.
    """
    choice = resolve_graph_engine(engine)
    if choice == "reference":
        return False
    if choice in ("fast", "fast-threaded"):
        _KERNEL.load()  # raise with the real reason when unavailable
        return True
    return fast_available()


def resolve_threads(engine: str | None, threads: int | None) -> int:
    """Worker count for a kernel call: 1 unless ``fast-threaded`` is chosen.

    When the resolved engine is ``fast-threaded``, ``threads`` (explicit >
    ``REPRO_KERNEL_THREADS`` > CPU count) selects the pthread variant;
    otherwise the serial kernel runs.  Results are bit-identical either way.
    """
    if resolve_graph_engine(engine) != "fast-threaded":
        return 1
    from repro import engines

    return engines.resolve_kernel_threads(threads)


def _null(ptr_type):
    return ctypes.cast(None, ptr_type)


def relabel_arrays(
    out_offsets: np.ndarray,
    out_targets: np.ndarray,
    out_weights: np.ndarray | None,
    mapping: np.ndarray,
    threads: int = 1,
) -> tuple:
    """Relabelled dual-CSR arrays under a (pre-validated) permutation.

    Returns ``(out_offsets, out_targets, in_offsets, in_sources,
    out_weights, in_weights)`` byte-identical to what the numpy
    reference in :meth:`Graph.relabel` produces.  ``mapping`` must be a
    validated permutation — the kernel scatters through it unchecked.
    ``threads > 1`` runs the pthread-chunked variant (same bytes out).
    Raises :class:`KernelUnavailable` when the kernel cannot be built.
    """
    lib = _KERNEL.load()
    n = int(out_offsets.size - 1)
    num_edges = int(out_targets.size)
    out_offsets = np.ascontiguousarray(out_offsets, dtype=np.int64)
    out_targets = np.ascontiguousarray(out_targets, dtype=np.int32)
    mapping = np.ascontiguousarray(mapping, dtype=np.int32)
    new_out_offsets = np.empty(n + 1, dtype=np.int64)
    new_out_targets = np.empty(num_edges, dtype=np.int32)
    new_in_offsets = np.empty(n + 1, dtype=np.int64)
    new_in_sources = np.empty(num_edges, dtype=np.int32)
    if out_weights is not None:
        out_weights = np.ascontiguousarray(out_weights, dtype=np.float64)
        new_out_weights = np.empty(num_edges, dtype=np.float64)
        new_in_weights = np.empty(num_edges, dtype=np.float64)
        w_in = out_weights.ctypes.data_as(_F64)
        w_out = new_out_weights.ctypes.data_as(_F64)
        w_in_csr = new_in_weights.ctypes.data_as(_F64)
    else:
        new_out_weights = new_in_weights = None
        w_in = w_out = w_in_csr = _null(_F64)
    args = (
        out_offsets.ctypes.data_as(_I64),
        out_targets.ctypes.data_as(_I32),
        w_in,
        mapping.ctypes.data_as(_I32),
        n,
        new_out_offsets.ctypes.data_as(_I64),
        new_out_targets.ctypes.data_as(_I32),
        w_out,
        new_in_offsets.ctypes.data_as(_I64),
        new_in_sources.ctypes.data_as(_I32),
        w_in_csr,
    )
    if threads > 1:
        rc = lib.repro_relabel_threaded(*args, threads)
    else:
        rc = lib.repro_relabel(*args)
    if rc != 0:
        raise MemoryError("relabel kernel ran out of memory")
    return (
        new_out_offsets,
        new_out_targets,
        new_in_offsets,
        new_in_sources,
        new_out_weights,
        new_in_weights,
    )


def build_csr_arrays(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
    threads: int = 1,
) -> tuple:
    """Dual-CSR arrays built from parallel edge-endpoint arrays.

    Returns ``(out_offsets, out_targets, in_offsets, in_sources,
    out_weights, in_weights)`` byte-identical to the stable numpy path
    of :func:`repro.graph.csr._build_dual_csr`.  Endpoints are
    range-checked here (the kernel scatters through them), matching the
    reference's failure mode with a clearer message.  Raises
    :class:`KernelUnavailable` when the kernel cannot be built.
    """
    lib = _KERNEL.load()
    n = int(num_vertices)
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    num_edges = int(src.size)
    if num_edges:
        if min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n:
            raise ValueError("edge endpoint out of range")
    out_offsets = np.empty(n + 1, dtype=np.int64)
    out_targets = np.empty(num_edges, dtype=np.int32)
    in_offsets = np.empty(n + 1, dtype=np.int64)
    in_sources = np.empty(num_edges, dtype=np.int32)
    if weights is not None:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        out_weights = np.empty(num_edges, dtype=np.float64)
        in_weights = np.empty(num_edges, dtype=np.float64)
        w_in = weights.ctypes.data_as(_F64)
        w_out = out_weights.ctypes.data_as(_F64)
        w_in_csr = in_weights.ctypes.data_as(_F64)
    else:
        out_weights = in_weights = None
        w_in = w_out = w_in_csr = _null(_F64)
    args = (
        src.ctypes.data_as(_I64),
        dst.ctypes.data_as(_I64),
        w_in,
        num_edges,
        n,
        out_offsets.ctypes.data_as(_I64),
        out_targets.ctypes.data_as(_I32),
        w_out,
        in_offsets.ctypes.data_as(_I64),
        in_sources.ctypes.data_as(_I32),
        w_in_csr,
    )
    if threads > 1:
        rc = lib.repro_build_csr_threaded(*args, threads)
    else:
        rc = lib.repro_build_csr(*args)
    if rc != 0:
        raise MemoryError("CSR-build kernel ran out of memory")
    return out_offsets, out_targets, in_offsets, in_sources, out_weights, in_weights
