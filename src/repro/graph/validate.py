"""Graph integrity validation for externally produced data.

``Graph`` construction checks shapes and ranges; this module goes deeper —
useful when ingesting third-party edge lists or ``.npz`` files produced by
other tools — verifying that the dual CSR is internally consistent and
reporting structural statistics worth eyeballing before a reordering run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import Graph
from repro.graph.properties import skew_summary

__all__ = ["ValidationReport", "validate_graph"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    ok: bool
    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` summarizing the errors, if any."""
        if not self.ok:
            raise ValueError("invalid graph: " + "; ".join(self.errors))


def validate_graph(graph: Graph) -> ValidationReport:
    """Check dual-CSR consistency and collect structural statistics.

    Errors mark genuine corruption (the in- and out-CSR disagree);
    warnings mark legal-but-suspect structure (self loops, parallel edges,
    isolated vertices, no skew) that often indicates an ingestion mistake.
    """
    report = ValidationReport(ok=True)
    n, m = graph.num_vertices, graph.num_edges

    # --- hard consistency -------------------------------------------------
    if int(graph.out_offsets[-1]) != m or int(graph.in_offsets[-1]) != m:
        report.errors.append("offset arrays do not cover all edges")
    src, dst = graph.edge_array()
    in_pairs_src = graph.in_sources
    in_pairs_dst = np.repeat(np.arange(n, dtype=np.int64), graph.in_degrees())
    out_sorted = np.lexsort((dst, src))
    in_sorted = np.lexsort((in_pairs_dst, in_pairs_src))
    if not (
        np.array_equal(src[out_sorted], in_pairs_src[in_sorted])
        and np.array_equal(dst[out_sorted], in_pairs_dst[in_sorted])
    ):
        report.errors.append("in-CSR and out-CSR encode different edge multisets")
    if graph.is_weighted:
        if not np.isfinite(graph.out_weights).all():
            report.errors.append("non-finite edge weights")
        if abs(graph.out_weights.sum() - graph.in_weights.sum()) > 1e-6:
            report.errors.append("in/out weight totals disagree")

    # --- soft structure checks --------------------------------------------
    self_loops = int((src == dst).sum())
    if self_loops:
        report.warnings.append(f"{self_loops} self loops")
    if m:
        keys = src.astype(np.int64) * n + dst
        parallel = int(m - np.unique(keys).size)
        if parallel:
            report.warnings.append(f"{parallel} parallel edges")
    isolated = int(((graph.out_degrees() == 0) & (graph.in_degrees() == 0)).sum())
    if isolated:
        report.warnings.append(f"{isolated} isolated vertices")

    if m:
        skew = skew_summary(graph)
        report.stats = {
            "num_vertices": n,
            "num_edges": m,
            "avg_degree": graph.average_degree(),
            "max_out_degree": int(graph.out_degrees().max()),
            "hot_vertex_pct": skew.hot_vertex_pct_out,
            "edge_coverage_pct": skew.edge_coverage_pct_out,
            "self_loops": self_loops,
            "isolated_vertices": isolated,
        }
        # No real skew when "hot" vertices are not a minority, or when they
        # fail to own most edges.
        if skew.hot_vertex_pct_out > 40 or skew.edge_coverage_pct_out < 50:
            report.warnings.append(
                "low degree skew: skew-aware reordering unlikely to help"
            )
    report.ok = not report.errors
    return report
