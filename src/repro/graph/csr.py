"""Compressed Sparse Row graph representation.

A :class:`Graph` stores a directed graph twice, exactly as the Ligra-style
frameworks the paper evaluates do:

* an **out-CSR** (``out_offsets`` / ``out_targets``) grouping edges by source
  vertex, used by push-based computations, and
* an **in-CSR** (``in_offsets`` / ``in_sources``) grouping edges by
  destination vertex, used by pull-based computations.

Vertex IDs are dense integers in ``[0, num_vertices)``.  Per the paper
(Table VIII), frameworks use 4 bytes per vertex ID and 8 bytes per edge; we
use ``int64`` offsets and ``int32`` endpoints which matches that budget.

Graphs are immutable once constructed.  Reordering techniques produce a *new*
``Graph`` via :meth:`Graph.relabel`, mirroring the preprocessing pass the
paper describes (Section II-E): relabelling does not alter the graph itself,
only the assignment of IDs (and hence the memory placement of per-vertex
state).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.graph import fastgraph

__all__ = [
    "Graph",
    "GRAPH_MMAP_BYTES_ENV",
    "DEFAULT_GRAPH_MMAP_BYTES",
    "graph_mmap_budget",
]

_ID_DTYPE = np.int32
_OFFSET_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64

#: Byte threshold above which :meth:`Graph.load` memory-maps the saved
#: arrays instead of reading them into the heap.
GRAPH_MMAP_BYTES_ENV = "REPRO_GRAPH_MMAP_BYTES"

#: Default threshold: graphs under 256 MiB load eagerly (mmap page
#: faults would only add latency at that size); larger ones map lazily
#: so paper-scale CSRs are paged in on demand and shared read-only
#: across every process that opens the same files.  ``0`` (or negative)
#: disables mapping entirely.
DEFAULT_GRAPH_MMAP_BYTES = 1 << 28

#: Array fields persisted by :meth:`Graph.save`, in file order.
_SAVE_FIELDS = ("out_offsets", "out_targets", "in_offsets", "in_sources")
_SAVE_WEIGHT_FIELDS = ("out_weights", "in_weights")


def graph_mmap_budget() -> int:
    """The mmap byte threshold (``REPRO_GRAPH_MMAP_BYTES`` or default).

    Non-integer values raise :class:`ValueError` naming the variable,
    matching the eager-failure contract of the engine variables.
    """
    env = os.environ.get(GRAPH_MMAP_BYTES_ENV)
    if not env:
        return DEFAULT_GRAPH_MMAP_BYTES
    try:
        return int(env)
    except ValueError:
        raise ValueError(
            f"{GRAPH_MMAP_BYTES_ENV}={env!r} is not an integer byte count"
        ) from None


def _as_offsets(offsets: np.ndarray, num_edges: int, name: str) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=_OFFSET_DTYPE)
    if offsets.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if offsets[0] != 0 or offsets[-1] != num_edges:
        raise ValueError(f"{name} must start at 0 and end at num_edges")
    if np.any(np.diff(offsets) < 0):
        raise ValueError(f"{name} must be non-decreasing")
    return offsets


class Graph:
    """An immutable directed graph in dual-CSR form.

    Most users should build instances through
    :func:`repro.graph.builder.from_edges` or one of the generators in
    :mod:`repro.graph.generators` rather than calling this constructor
    directly.

    Parameters
    ----------
    out_offsets, out_targets:
        Out-CSR arrays: ``out_targets[out_offsets[v]:out_offsets[v + 1]]``
        are the destinations of ``v``'s out-edges.
    in_offsets, in_sources:
        In-CSR arrays: ``in_sources[in_offsets[v]:in_offsets[v + 1]]`` are
        the sources of ``v``'s in-edges.
    out_weights, in_weights:
        Optional edge weights aligned with ``out_targets`` / ``in_sources``.
        Either both or neither must be given.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_sources",
        "out_weights",
        "in_weights",
        "_out_degrees",
        "_in_degrees",
    )

    def __init__(
        self,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        out_weights: np.ndarray | None = None,
        in_weights: np.ndarray | None = None,
    ) -> None:
        out_targets = np.asarray(out_targets, dtype=_ID_DTYPE)
        in_sources = np.asarray(in_sources, dtype=_ID_DTYPE)
        if out_targets.size != in_sources.size:
            raise ValueError("out-CSR and in-CSR must encode the same edges")
        self.num_edges = int(out_targets.size)
        self.num_vertices = int(len(out_offsets) - 1)
        if len(in_offsets) - 1 != self.num_vertices:
            raise ValueError("in/out offset arrays disagree on vertex count")
        self.out_offsets = _as_offsets(out_offsets, self.num_edges, "out_offsets")
        self.in_offsets = _as_offsets(in_offsets, self.num_edges, "in_offsets")
        self.out_targets = out_targets
        self.in_sources = in_sources
        if (out_weights is None) != (in_weights is None):
            raise ValueError("either both or neither weight array must be given")
        if out_weights is not None:
            out_weights = np.asarray(out_weights, dtype=_WEIGHT_DTYPE)
            in_weights = np.asarray(in_weights, dtype=_WEIGHT_DTYPE)
            if out_weights.size != self.num_edges or in_weights.size != self.num_edges:
                raise ValueError("weight arrays must have one entry per edge")
        self.out_weights = out_weights
        self.in_weights = in_weights
        self._out_degrees = None
        self._in_degrees = None
        for arr in (self.out_targets, self.in_sources):
            if arr.size and (arr.min() < 0 or arr.max() >= self.num_vertices):
                raise ValueError("edge endpoint out of range")

    @classmethod
    def _from_kernel_arrays(
        cls,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        out_weights: np.ndarray | None = None,
        in_weights: np.ndarray | None = None,
    ) -> "Graph":
        """Construct without re-validating the CSR invariants.

        Only for arrays whose invariants hold by construction — the
        compiled kernels' outputs and shared-memory views of graphs
        validated once in the parent process.  Everything else goes
        through ``__init__``.
        """
        graph = object.__new__(cls)
        graph.num_edges = int(out_targets.size)
        graph.num_vertices = int(out_offsets.size - 1)
        graph.out_offsets = out_offsets
        graph.out_targets = out_targets
        graph.in_offsets = in_offsets
        graph.in_sources = in_sources
        graph.out_weights = out_weights
        graph.in_weights = in_weights
        graph._out_degrees = None
        graph._in_degrees = None
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries per-edge weights."""
        return self.out_weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (length ``num_vertices``).

        Computed once and cached (read-only): degrees sit on the
        relabel, trace-construction and reorder-analysis hot paths, and
        the graph is immutable so the answer never changes.
        """
        if self._out_degrees is None:
            degrees = np.diff(self.out_offsets)
            degrees.setflags(write=False)
            self._out_degrees = degrees
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (length ``num_vertices``, cached)."""
        if self._in_degrees is None:
            degrees = np.diff(self.in_offsets)
            degrees.setflags(write=False)
            self._in_degrees = degrees
        return self._in_degrees

    def degrees(self, kind: str = "out") -> np.ndarray:
        """Degree array by kind: ``"out"``, ``"in"`` or ``"both"`` (sum)."""
        if kind == "out":
            return self.out_degrees()
        if kind == "in":
            return self.in_degrees()
        if kind == "both":
            return self.out_degrees() + self.in_degrees()
        raise ValueError(f"unknown degree kind: {kind!r}")

    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of ``v``'s out-edges."""
        return self.out_targets[self.out_offsets[v] : self.out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges."""
        return self.in_sources[self.in_offsets[v] : self.in_offsets[v + 1]]

    def average_degree(self) -> float:
        """Average degree ``num_edges / num_vertices`` (the paper's ``A``)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` of every edge, in out-CSR order."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=_ID_DTYPE), self.out_degrees()
        )
        return sources, self.out_targets.copy()

    # ------------------------------------------------------------------
    # Disk persistence — per-field .npy files, mmap-loadable
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total bytes of the CSR arrays (offsets, endpoints, weights)."""
        total = (
            self.out_offsets.nbytes
            + self.out_targets.nbytes
            + self.in_offsets.nbytes
            + self.in_sources.nbytes
        )
        if self.is_weighted:
            total += self.out_weights.nbytes + self.in_weights.nbytes
        return total

    def save(self, directory: str | Path) -> Path:
        """Persist the graph as one ``.npy`` file per CSR array.

        Per-field files (rather than one ``.npz`` bundle) are what makes
        :meth:`load`'s mmap mode possible: ``np.load(..., mmap_mode="r")``
        maps a plain ``.npy`` in place, but has to decompress an archive
        member into the heap.  ``meta.json`` is written last (atomically)
        so a directory with metadata is always a complete save.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        fields = list(_SAVE_FIELDS)
        if self.is_weighted:
            fields += list(_SAVE_WEIGHT_FIELDS)
        for name in fields:
            np.save(directory / f"{name}.npy", np.ascontiguousarray(getattr(self, name)))
        meta = {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "weighted": self.is_weighted,
        }
        tmp = directory / "meta.json.tmp"
        tmp.write_text(json.dumps(meta))
        tmp.replace(directory / "meta.json")
        return directory

    @classmethod
    def load(cls, directory: str | Path, mmap: bool | None = None) -> "Graph":
        """Reload a :meth:`save`'d graph, memory-mapping large ones.

        ``mmap=None`` (the default) maps the arrays read-only when their
        on-disk footprint exceeds :func:`graph_mmap_budget`; pass
        ``True``/``False`` to force either mode.  Mapped loads go through
        the trusted constructor — the arrays were validated when the
        graph was built, and eager re-validation would fault in every
        page, defeating the laziness that is the point of mapping.
        """
        directory = Path(directory)
        meta = json.loads((directory / "meta.json").read_text())
        fields = list(_SAVE_FIELDS)
        if meta["weighted"]:
            fields += list(_SAVE_WEIGHT_FIELDS)
        paths = {name: directory / f"{name}.npy" for name in fields}
        if mmap is None:
            budget = graph_mmap_budget()
            total = sum(p.stat().st_size for p in paths.values())
            mmap = budget > 0 and total > budget
        arrays = {
            name: np.load(path, mmap_mode="r" if mmap else None)
            for name, path in paths.items()
        }
        if not mmap:
            graph = cls(
                arrays["out_offsets"],
                arrays["out_targets"],
                arrays["in_offsets"],
                arrays["in_sources"],
                arrays.get("out_weights"),
                arrays.get("in_weights"),
            )
        else:
            graph = cls._from_kernel_arrays(
                arrays["out_offsets"],
                arrays["out_targets"],
                arrays["in_offsets"],
                arrays["in_sources"],
                arrays.get("out_weights"),
                arrays.get("in_weights"),
            )
        if (graph.num_vertices, graph.num_edges) != (
            meta["num_vertices"],
            meta["num_edges"],
        ):
            raise ValueError(
                f"saved graph in {directory} is inconsistent with its metadata"
            )
        return graph

    # ------------------------------------------------------------------
    # Relabelling — the primitive every reordering technique uses
    # ------------------------------------------------------------------
    def relabel(
        self,
        mapping: np.ndarray,
        engine: str | None = None,
        threads: int | None = None,
    ) -> "Graph":
        """Return a new graph where old vertex ``v`` becomes ``mapping[v]``.

        ``mapping`` must be a permutation of ``[0, num_vertices)``.  This
        is the CSR regeneration step the paper notes dominates reordering
        cost (Section II-E, Table XI).  All engines produce bit-identical
        results: the vectorised numpy reference below, the O(E)
        counting-placement kernel in :mod:`repro.graph.fastgraph`, and
        its pthread-chunked variant (``fast-threaded``; ``threads``
        defaults to ``REPRO_KERNEL_THREADS``, else the CPU count) —
        selected by ``engine`` / ``REPRO_GRAPH_ENGINE``; ``auto`` uses
        the serial kernel whenever a C compiler is available.
        """
        mapping = np.asarray(mapping)
        if mapping.shape != (self.num_vertices,):
            raise ValueError("mapping must have one entry per vertex")
        # Range-check before the dtype cast: negative labels would wrap
        # through fancy indexing (and huge ones through the int32 cast)
        # and could slip past the permutation test below.
        if mapping.size and (mapping.min() < 0 or mapping.max() >= self.num_vertices):
            raise ValueError(
                "mapping entries must be in [0, num_vertices); "
                "got values outside that range"
            )
        mapping = mapping.astype(_ID_DTYPE, copy=False)
        check = np.zeros(self.num_vertices, dtype=bool)
        check[mapping] = True
        if not check.all():
            raise ValueError("mapping is not a permutation")

        try:
            if fastgraph.use_fast(engine):
                return Graph._from_kernel_arrays(
                    *fastgraph.relabel_arrays(
                        self.out_offsets,
                        self.out_targets,
                        self.out_weights,
                        mapping,
                        threads=fastgraph.resolve_threads(engine, threads),
                    )
                )
        except fastgraph.KernelUnavailable:
            if fastgraph.resolve_graph_engine(engine) in ("fast", "fast-threaded"):
                raise
        old_src, old_dst = self.edge_array()
        new_src = mapping[old_src]
        new_dst = mapping[old_dst]
        weights = self.out_weights
        return _build_dual_csr(
            self.num_vertices, new_src, new_dst, weights, stable=True,
            engine="reference",
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, {kind})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: identical CSR arrays (and weights)."""
        if not isinstance(other, Graph):
            return NotImplemented
        if (self.num_vertices, self.num_edges) != (
            other.num_vertices,
            other.num_edges,
        ):
            return False
        same = (
            np.array_equal(self.out_offsets, other.out_offsets)
            and np.array_equal(self.out_targets, other.out_targets)
            and np.array_equal(self.in_offsets, other.in_offsets)
            and np.array_equal(self.in_sources, other.in_sources)
        )
        if not same:
            return False
        if self.is_weighted != other.is_weighted:
            return False
        if self.is_weighted:
            return np.array_equal(self.out_weights, other.out_weights)
        return True

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))


def _build_dual_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None,
    stable: bool = False,
    engine: str | None = None,
    threads: int | None = None,
) -> Graph:
    """Construct a :class:`Graph` from parallel edge-endpoint arrays.

    Shared by the public builder and :meth:`Graph.relabel`.  When ``stable``
    is true a stable sort keeps the within-vertex edge order deterministic,
    which relabelling relies on for reproducibility.  The stable path has
    two bit-identical engines: the dual-argsort numpy reference below and
    the counting-sort kernel in :mod:`repro.graph.fastgraph` (``engine`` /
    ``REPRO_GRAPH_ENGINE``); the unstable path always runs the reference
    (quicksort tie order is not reproducible by a stable counting sort).
    """
    if stable:
        try:
            if fastgraph.use_fast(engine):
                return Graph._from_kernel_arrays(
                    *fastgraph.build_csr_arrays(
                        num_vertices,
                        src,
                        dst,
                        weights,
                        threads=fastgraph.resolve_threads(engine, threads),
                    )
                )
        except fastgraph.KernelUnavailable:
            if fastgraph.resolve_graph_engine(engine) in ("fast", "fast-threaded"):
                raise
    kind = "stable" if stable else "quicksort"
    out_order = np.argsort(src, kind=kind)
    out_src = src[out_order]
    out_targets = dst[out_order]
    out_counts = np.bincount(src, minlength=num_vertices)
    out_offsets = np.zeros(num_vertices + 1, dtype=_OFFSET_DTYPE)
    np.cumsum(out_counts, out=out_offsets[1:])

    # Derive the in-CSR from the out-CSR edge order so the representation is
    # canonical: any construction path over the same (multiset, within-source
    # order) of edges yields identical arrays, making round-trips exact.
    in_order = np.argsort(out_targets, kind="stable")
    in_sources = out_src[in_order]
    in_counts = np.bincount(dst, minlength=num_vertices)
    in_offsets = np.zeros(num_vertices + 1, dtype=_OFFSET_DTYPE)
    np.cumsum(in_counts, out=in_offsets[1:])

    out_weights = in_weights = None
    if weights is not None:
        weights = np.asarray(weights, dtype=_WEIGHT_DTYPE)
        out_weights = weights[out_order]
        in_weights = out_weights[in_order]
    return Graph(
        out_offsets, out_targets, in_offsets, in_sources, out_weights, in_weights
    )
