/* Fast-path graph-structure kernels.
 *
 * Exact C ports of the two structural primitives every reordering
 * technique sits on, each verified bit-identical to its numpy reference
 * by the equivalence suites (tests/graph/test_fastgraph.py); any
 * behavioural change here must keep that property (or change both
 * implementations together).
 *
 *   repro_relabel    — permutation relabel: regenerate the dual CSR of a
 *                      graph under a vertex permutation in O(E), no
 *                      sorts.  The numpy reference expands the edge
 *                      array (np.repeat + copy), applies the mapping and
 *                      stable-argsorts twice (by new source, then by new
 *                      target); because each new source corresponds to
 *                      exactly one old vertex, the stable by-source
 *                      order is reproduced by scattering each old
 *                      vertex's edge block (within-vertex order
 *                      preserved) into the slot range its new id owns,
 *                      with offsets prefix-summed from permuted degree
 *                      counts.  The in-CSR then falls out of one
 *                      counting pass over the new out-CSR (see below).
 *   repro_build_csr  — dual-CSR build from parallel (src, dst[, weight])
 *                      edge arrays: a stable counting-sort placement
 *                      replacing both argsorts of _build_dual_csr.  The
 *                      out-CSR scatter visits edges in input order, so
 *                      ties on src keep insertion order exactly like
 *                      np.argsort(src, kind="stable"); the in-CSR is
 *                      derived from the out-CSR edge order (walk new
 *                      sources ascending, scatter by target), which is
 *                      precisely the stable argsort of out_targets the
 *                      reference performs, keeping the canonical-
 *                      representation guarantee.
 *
 * Compiled on demand by repro/_compile.py with the system C compiler
 * into a shared library and driven through ctypes.
 */

#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------- phase fork/join
 * (same pattern as _fasttrace.c: data-parallel phases, disjoint state
 * within a phase, deterministic placement cursors between phases; a
 * failed pthread_create runs that slice inline after the joins). */

#define MAX_THREADS 64

typedef void (*PhaseFn)(void *ctx, int64_t t);

typedef struct {
    void *ctx;
    int64_t t;
    PhaseFn fn;
} PhaseArg;

static void *phase_tramp(void *p) {
    PhaseArg *a = (PhaseArg *)p;
    a->fn(a->ctx, a->t);
    return NULL;
}

static void run_phase(PhaseFn fn, void *ctx, int64_t threads) {
    pthread_t tids[MAX_THREADS];
    PhaseArg args[MAX_THREADS];
    uint8_t ok[MAX_THREADS];
    for (int64_t t = 1; t < threads; t++) {
        args[t].ctx = ctx;
        args[t].t = t;
        args[t].fn = fn;
        ok[t] = pthread_create(&tids[t], NULL, phase_tramp, &args[t]) == 0;
    }
    fn(ctx, 0);
    for (int64_t t = 1; t < threads; t++)
        if (ok[t])
            pthread_join(tids[t], NULL);
    for (int64_t t = 1; t < threads; t++)
        if (!ok[t])
            fn(ctx, t);
}

/* Derive the in-CSR from a finished out-CSR: walking sources in
 * ascending order and scattering by target is the stable counting sort
 * of out_targets, so in_sources[in_offsets[t]:in_offsets[t+1]] lists
 * t's in-neighbours in out-CSR edge order — byte-identical to
 * out_src[np.argsort(out_targets, kind="stable")].  in_offsets must
 * already hold the prefix-summed in-degree counts; `cursor` is n
 * scratch slots.  out_weights/in_weights may be NULL together. */
static void in_csr_from_out(const int64_t *out_offsets,
                            const int32_t *out_targets,
                            const double *out_weights, int64_t n,
                            const int64_t *in_offsets, int32_t *in_sources,
                            double *in_weights, int64_t *cursor) {
    memcpy(cursor, in_offsets, (size_t)n * sizeof(int64_t));
    if (out_weights) {
        for (int64_t u = 0; u < n; u++) {
            int64_t end = out_offsets[u + 1];
            for (int64_t p = out_offsets[u]; p < end; p++) {
                int64_t q = cursor[out_targets[p]]++;
                in_sources[q] = (int32_t)u;
                in_weights[q] = out_weights[p];
            }
        }
    } else {
        for (int64_t u = 0; u < n; u++) {
            int64_t end = out_offsets[u + 1];
            for (int64_t p = out_offsets[u]; p < end; p++)
                in_sources[cursor[out_targets[p]]++] = (int32_t)u;
        }
    }
}

/* Prefix-sum `counts[0:n]` (clobbered) into `offsets[0:n+1]`. */
static void prefix_sum(const int64_t *counts, int64_t n, int64_t *offsets) {
    int64_t sum = 0;
    offsets[0] = 0;
    for (int64_t v = 0; v < n; v++) {
        sum += counts[v];
        offsets[v + 1] = sum;
    }
}

/* Relabel the dual CSR under `mapping` (old id v -> new id mapping[v]).
 * The mapping must be a permutation of [0, n) — validated by the Python
 * caller.  Output arrays must hold n+1 offsets / num_edges endpoints;
 * weight pointers may be NULL (both or neither).  Returns 0, or -1 on
 * allocation failure. */
int32_t repro_relabel(const int64_t *out_offsets, const int32_t *out_targets,
                      const double *out_weights, const int32_t *mapping,
                      int64_t n, int64_t *new_out_offsets,
                      int32_t *new_out_targets, double *new_out_weights,
                      int64_t *new_in_offsets, int32_t *new_in_sources,
                      double *new_in_weights) {
    if (n == 0) {
        new_out_offsets[0] = 0;
        new_in_offsets[0] = 0;
        return 0;
    }
    int64_t *scratch = (int64_t *)malloc((size_t)(2 * n) * sizeof(int64_t));
    if (!scratch)
        return -1;
    int64_t *counts = scratch, *cursor = scratch + n;

    /* Out-CSR offsets: new vertex mapping[v] inherits v's degree. */
    for (int64_t v = 0; v < n; v++)
        counts[mapping[v]] = out_offsets[v + 1] - out_offsets[v];
    prefix_sum(counts, n, new_out_offsets);

    /* Scatter each old vertex's edge block into its new slot range,
     * applying the mapping to targets on the way through — this fuses
     * the reference's edge_array expansion, fancy-indexed remap and
     * stable by-source sort into one pass. */
    if (out_weights) {
        for (int64_t v = 0; v < n; v++) {
            int64_t pos = new_out_offsets[mapping[v]];
            int64_t end = out_offsets[v + 1];
            for (int64_t p = out_offsets[v]; p < end; p++, pos++) {
                new_out_targets[pos] = mapping[out_targets[p]];
                new_out_weights[pos] = out_weights[p];
            }
        }
    } else {
        for (int64_t v = 0; v < n; v++) {
            int64_t pos = new_out_offsets[mapping[v]];
            int64_t end = out_offsets[v + 1];
            for (int64_t p = out_offsets[v]; p < end; p++, pos++)
                new_out_targets[pos] = mapping[out_targets[p]];
        }
    }

    /* In-CSR offsets: count new targets, then the canonical derivation
     * from the new out-CSR. */
    memset(counts, 0, (size_t)n * sizeof(int64_t));
    int64_t num_edges = out_offsets[n];
    for (int64_t e = 0; e < num_edges; e++)
        counts[new_out_targets[e]]++;
    prefix_sum(counts, n, new_in_offsets);
    in_csr_from_out(new_out_offsets, new_out_targets, new_out_weights, n,
                    new_in_offsets, new_in_sources, new_in_weights, cursor);
    free(scratch);
    return 0;
}

/* Build the dual CSR from parallel edge arrays src/dst (values already
 * validated to lie in [0, n) by the Python caller).  Weight pointers
 * may be NULL (all three or none).  Returns 0, or -1 on allocation
 * failure. */
int32_t repro_build_csr(const int64_t *src, const int64_t *dst,
                        const double *weights, int64_t num_edges, int64_t n,
                        int64_t *out_offsets, int32_t *out_targets,
                        double *out_weights, int64_t *in_offsets,
                        int32_t *in_sources, double *in_weights) {
    if (n == 0) {
        out_offsets[0] = 0;
        in_offsets[0] = 0;
        return 0;
    }
    int64_t *scratch = (int64_t *)calloc((size_t)(2 * n), sizeof(int64_t));
    if (!scratch)
        return -1;
    int64_t *counts = scratch, *cursor = scratch + n;

    for (int64_t e = 0; e < num_edges; e++)
        counts[src[e]]++;
    prefix_sum(counts, n, out_offsets);

    /* Stable scatter by source: input order is preserved within each
     * source, matching np.argsort(src, kind="stable"). */
    memcpy(cursor, out_offsets, (size_t)n * sizeof(int64_t));
    if (weights) {
        for (int64_t e = 0; e < num_edges; e++) {
            int64_t pos = cursor[src[e]]++;
            out_targets[pos] = (int32_t)dst[e];
            out_weights[pos] = weights[e];
        }
    } else {
        for (int64_t e = 0; e < num_edges; e++)
            out_targets[cursor[src[e]]++] = (int32_t)dst[e];
    }

    memset(counts, 0, (size_t)n * sizeof(int64_t));
    for (int64_t e = 0; e < num_edges; e++)
        counts[dst[e]]++;
    prefix_sum(counts, n, in_offsets);
    in_csr_from_out(out_offsets, out_targets, out_weights, n, in_offsets,
                    in_sources, in_weights, cursor);
    free(scratch);
    return 0;
}

/* --------------------------------------------------- threaded variants
 *
 * Bit-identical to the serial kernels by construction.  Both scatters
 * are stable counting sorts; the parallel versions keep stability by
 * giving every thread a contiguous input slice and laying placement
 * cursors out value-major, thread-minor — equal keys land in slice
 * order, and each slice is scanned in input order.  The out-CSR
 * relabel scatter needs no cursors at all: each old vertex owns a
 * disjoint output slot range, so slicing old vertices across threads
 * touches disjoint output. */

/* Vertex slice bounds balanced by edge count: vlo[t] is the first
 * vertex whose out-range starts at or after t/threads of the edges. */
static void balance_by_edges(const int64_t *offsets, int64_t n,
                             int64_t threads, int64_t *vlo) {
    int64_t num_edges = offsets[n];
    vlo[0] = 0;
    for (int64_t t = 1; t < threads; t++) {
        int64_t target = t * num_edges / threads;
        int64_t lo = vlo[t - 1], hi = n;
        while (lo < hi) {
            int64_t mid = lo + (hi - lo) / 2;
            if (offsets[mid] < target)
                lo = mid + 1;
            else
                hi = mid;
        }
        vlo[t] = lo;
    }
    vlo[threads] = n;
}

typedef struct {
    const int64_t *out_offsets;
    const int32_t *out_targets;
    const double *out_weights;
    int64_t n, threads;
    const int64_t *in_offsets;
    int32_t *in_sources;
    double *in_weights;
    int64_t *rows; /* threads * n: per-thread target counts, then cursors */
    int64_t vlo[MAX_THREADS + 1];
} InCsrCtx;

static void in_count_phase(void *p, int64_t t) {
    InCsrCtx *c = (InCsrCtx *)p;
    int64_t *row = c->rows + t * c->n;
    memset(row, 0, (size_t)c->n * sizeof(int64_t));
    int64_t p0 = c->out_offsets[c->vlo[t]], p1 = c->out_offsets[c->vlo[t + 1]];
    for (int64_t q = p0; q < p1; q++)
        row[c->out_targets[q]]++;
}

static void in_cursor_phase(void *p, int64_t t) {
    InCsrCtx *c = (InCsrCtx *)p;
    int64_t lo = t * c->n / c->threads, hi = (t + 1) * c->n / c->threads;
    for (int64_t v = lo; v < hi; v++) {
        int64_t base = c->in_offsets[v];
        for (int64_t tt = 0; tt < c->threads; tt++) {
            int64_t *slot = c->rows + tt * c->n + v;
            int64_t cnt = *slot;
            *slot = base;
            base += cnt;
        }
    }
}

static void in_scatter_phase(void *p, int64_t t) {
    InCsrCtx *c = (InCsrCtx *)p;
    int64_t *cur = c->rows + t * c->n;
    for (int64_t u = c->vlo[t]; u < c->vlo[t + 1]; u++) {
        int64_t end = c->out_offsets[u + 1];
        for (int64_t q = c->out_offsets[u]; q < end; q++) {
            int64_t pos = cur[c->out_targets[q]]++;
            c->in_sources[pos] = (int32_t)u;
            if (c->in_weights)
                c->in_weights[pos] = c->out_weights[q];
        }
    }
}

/* In-degree counts from the per-thread rows (before they become
 * cursors): counts[v] = sum over threads.  Sequential prefix follows. */
static void in_offsets_from_rows(const int64_t *rows, int64_t n,
                                 int64_t threads, int64_t *in_offsets) {
    int64_t sum = 0;
    in_offsets[0] = 0;
    for (int64_t v = 0; v < n; v++) {
        for (int64_t t = 0; t < threads; t++)
            sum += rows[t * n + v];
        in_offsets[v + 1] = sum;
    }
}

/* Clamp worker count: per-thread O(n) scratch rows bound total scratch
 * to 256 MiB, and empty inputs take the serial path. */
static int64_t graph_threads(int64_t threads, int64_t n, int64_t num_edges) {
    if (n == 0 || num_edges == 0)
        return 1;
    if (threads > MAX_THREADS)
        threads = MAX_THREADS;
    if (threads > num_edges)
        threads = num_edges;
    while (threads > 1 && threads * n * (int64_t)sizeof(int64_t) >
                              ((int64_t)1 << 28))
        threads--;
    return threads;
}

typedef struct {
    const int64_t *out_offsets;
    const int32_t *out_targets;
    const double *out_weights;
    const int32_t *mapping;
    int64_t n, threads;
    int64_t *new_out_offsets;
    int32_t *new_out_targets;
    double *new_out_weights;
    int64_t *counts;
    int64_t vlo[MAX_THREADS + 1];
} RelabelCtx;

static void relabel_count_phase(void *p, int64_t t) {
    RelabelCtx *c = (RelabelCtx *)p;
    int64_t lo = t * c->n / c->threads, hi = (t + 1) * c->n / c->threads;
    for (int64_t v = lo; v < hi; v++)
        c->counts[c->mapping[v]] = c->out_offsets[v + 1] - c->out_offsets[v];
}

static void relabel_scatter_phase(void *p, int64_t t) {
    RelabelCtx *c = (RelabelCtx *)p;
    for (int64_t v = c->vlo[t]; v < c->vlo[t + 1]; v++) {
        int64_t pos = c->new_out_offsets[c->mapping[v]];
        int64_t end = c->out_offsets[v + 1];
        for (int64_t q = c->out_offsets[v]; q < end; q++, pos++) {
            c->new_out_targets[pos] = c->mapping[c->out_targets[q]];
            if (c->new_out_weights)
                c->new_out_weights[pos] = c->out_weights[q];
        }
    }
}

int32_t repro_relabel_threaded(
    const int64_t *out_offsets, const int32_t *out_targets,
    const double *out_weights, const int32_t *mapping, int64_t n,
    int64_t *new_out_offsets, int32_t *new_out_targets,
    double *new_out_weights, int64_t *new_in_offsets,
    int32_t *new_in_sources, double *new_in_weights, int32_t threads) {
    int64_t num_edges = n ? out_offsets[n] : 0;
    int64_t T = graph_threads(threads, n, num_edges);
    if (T <= 1)
        return repro_relabel(out_offsets, out_targets, out_weights, mapping, n,
                             new_out_offsets, new_out_targets, new_out_weights,
                             new_in_offsets, new_in_sources, new_in_weights);

    int64_t *counts = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *rows = (int64_t *)malloc((size_t)(T * n) * sizeof(int64_t));
    if (!counts || !rows) {
        free(counts);
        free(rows);
        return -1;
    }
    RelabelCtx rc = {out_offsets, out_targets,    out_weights,
                     mapping,     n,              T,
                     new_out_offsets, new_out_targets, new_out_weights,
                     counts,      {0}};
    run_phase(relabel_count_phase, &rc, T);
    prefix_sum(counts, n, new_out_offsets);
    balance_by_edges(out_offsets, n, T, rc.vlo);
    run_phase(relabel_scatter_phase, &rc, T);

    InCsrCtx ic = {new_out_offsets, new_out_targets, new_out_weights,
                   n,               T,               new_in_offsets,
                   new_in_sources,  new_in_weights,  rows,
                   {0}};
    balance_by_edges(new_out_offsets, n, T, ic.vlo);
    run_phase(in_count_phase, &ic, T);
    in_offsets_from_rows(rows, n, T, new_in_offsets);
    run_phase(in_cursor_phase, &ic, T);
    run_phase(in_scatter_phase, &ic, T);
    free(counts);
    free(rows);
    return 0;
}

typedef struct {
    const int64_t *src;
    const int64_t *dst;
    const double *weights;
    int64_t num_edges, n, threads;
    int64_t *out_offsets;
    int32_t *out_targets;
    double *out_weights;
    int64_t *rows; /* threads * n: per-thread source counts, then cursors */
} BuildCtx;

static void build_count_phase(void *p, int64_t t) {
    BuildCtx *c = (BuildCtx *)p;
    int64_t *row = c->rows + t * c->n;
    memset(row, 0, (size_t)c->n * sizeof(int64_t));
    int64_t lo = t * c->num_edges / c->threads;
    int64_t hi = (t + 1) * c->num_edges / c->threads;
    for (int64_t e = lo; e < hi; e++)
        row[c->src[e]]++;
}

static void build_cursor_phase(void *p, int64_t t) {
    BuildCtx *c = (BuildCtx *)p;
    int64_t lo = t * c->n / c->threads, hi = (t + 1) * c->n / c->threads;
    for (int64_t v = lo; v < hi; v++) {
        int64_t base = c->out_offsets[v];
        for (int64_t tt = 0; tt < c->threads; tt++) {
            int64_t *slot = c->rows + tt * c->n + v;
            int64_t cnt = *slot;
            *slot = base;
            base += cnt;
        }
    }
}

static void build_scatter_phase(void *p, int64_t t) {
    BuildCtx *c = (BuildCtx *)p;
    int64_t *cur = c->rows + t * c->n;
    int64_t lo = t * c->num_edges / c->threads;
    int64_t hi = (t + 1) * c->num_edges / c->threads;
    for (int64_t e = lo; e < hi; e++) {
        int64_t pos = cur[c->src[e]]++;
        c->out_targets[pos] = (int32_t)c->dst[e];
        if (c->out_weights)
            c->out_weights[pos] = c->weights[e];
    }
}

int32_t repro_build_csr_threaded(const int64_t *src, const int64_t *dst,
                                 const double *weights, int64_t num_edges,
                                 int64_t n, int64_t *out_offsets,
                                 int32_t *out_targets, double *out_weights,
                                 int64_t *in_offsets, int32_t *in_sources,
                                 double *in_weights, int32_t threads) {
    int64_t T = graph_threads(threads, n, num_edges);
    if (T <= 1)
        return repro_build_csr(src, dst, weights, num_edges, n, out_offsets,
                               out_targets, out_weights, in_offsets,
                               in_sources, in_weights);

    int64_t *rows = (int64_t *)malloc((size_t)(T * n) * sizeof(int64_t));
    if (!rows)
        return -1;
    BuildCtx bc = {src,         dst,         weights,     num_edges, n, T,
                   out_offsets, out_targets, out_weights, rows};
    run_phase(build_count_phase, &bc, T);
    in_offsets_from_rows(rows, n, T, out_offsets);
    run_phase(build_cursor_phase, &bc, T);
    run_phase(build_scatter_phase, &bc, T);

    InCsrCtx ic = {out_offsets, out_targets, out_weights, n,    T,
                   in_offsets,  in_sources,  in_weights,  rows, {0}};
    balance_by_edges(out_offsets, n, T, ic.vlo);
    run_phase(in_count_phase, &ic, T);
    in_offsets_from_rows(rows, n, T, in_offsets);
    run_phase(in_cursor_phase, &ic, T);
    run_phase(in_scatter_phase, &ic, T);
    free(rows);
    return 0;
}
