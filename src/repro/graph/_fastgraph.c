/* Fast-path graph-structure kernels.
 *
 * Exact C ports of the two structural primitives every reordering
 * technique sits on, each verified bit-identical to its numpy reference
 * by the equivalence suites (tests/graph/test_fastgraph.py); any
 * behavioural change here must keep that property (or change both
 * implementations together).
 *
 *   repro_relabel    — permutation relabel: regenerate the dual CSR of a
 *                      graph under a vertex permutation in O(E), no
 *                      sorts.  The numpy reference expands the edge
 *                      array (np.repeat + copy), applies the mapping and
 *                      stable-argsorts twice (by new source, then by new
 *                      target); because each new source corresponds to
 *                      exactly one old vertex, the stable by-source
 *                      order is reproduced by scattering each old
 *                      vertex's edge block (within-vertex order
 *                      preserved) into the slot range its new id owns,
 *                      with offsets prefix-summed from permuted degree
 *                      counts.  The in-CSR then falls out of one
 *                      counting pass over the new out-CSR (see below).
 *   repro_build_csr  — dual-CSR build from parallel (src, dst[, weight])
 *                      edge arrays: a stable counting-sort placement
 *                      replacing both argsorts of _build_dual_csr.  The
 *                      out-CSR scatter visits edges in input order, so
 *                      ties on src keep insertion order exactly like
 *                      np.argsort(src, kind="stable"); the in-CSR is
 *                      derived from the out-CSR edge order (walk new
 *                      sources ascending, scatter by target), which is
 *                      precisely the stable argsort of out_targets the
 *                      reference performs, keeping the canonical-
 *                      representation guarantee.
 *
 * Compiled on demand by repro/_compile.py with the system C compiler
 * into a shared library and driven through ctypes.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Derive the in-CSR from a finished out-CSR: walking sources in
 * ascending order and scattering by target is the stable counting sort
 * of out_targets, so in_sources[in_offsets[t]:in_offsets[t+1]] lists
 * t's in-neighbours in out-CSR edge order — byte-identical to
 * out_src[np.argsort(out_targets, kind="stable")].  in_offsets must
 * already hold the prefix-summed in-degree counts; `cursor` is n
 * scratch slots.  out_weights/in_weights may be NULL together. */
static void in_csr_from_out(const int64_t *out_offsets,
                            const int32_t *out_targets,
                            const double *out_weights, int64_t n,
                            const int64_t *in_offsets, int32_t *in_sources,
                            double *in_weights, int64_t *cursor) {
    memcpy(cursor, in_offsets, (size_t)n * sizeof(int64_t));
    if (out_weights) {
        for (int64_t u = 0; u < n; u++) {
            int64_t end = out_offsets[u + 1];
            for (int64_t p = out_offsets[u]; p < end; p++) {
                int64_t q = cursor[out_targets[p]]++;
                in_sources[q] = (int32_t)u;
                in_weights[q] = out_weights[p];
            }
        }
    } else {
        for (int64_t u = 0; u < n; u++) {
            int64_t end = out_offsets[u + 1];
            for (int64_t p = out_offsets[u]; p < end; p++)
                in_sources[cursor[out_targets[p]]++] = (int32_t)u;
        }
    }
}

/* Prefix-sum `counts[0:n]` (clobbered) into `offsets[0:n+1]`. */
static void prefix_sum(const int64_t *counts, int64_t n, int64_t *offsets) {
    int64_t sum = 0;
    offsets[0] = 0;
    for (int64_t v = 0; v < n; v++) {
        sum += counts[v];
        offsets[v + 1] = sum;
    }
}

/* Relabel the dual CSR under `mapping` (old id v -> new id mapping[v]).
 * The mapping must be a permutation of [0, n) — validated by the Python
 * caller.  Output arrays must hold n+1 offsets / num_edges endpoints;
 * weight pointers may be NULL (both or neither).  Returns 0, or -1 on
 * allocation failure. */
int32_t repro_relabel(const int64_t *out_offsets, const int32_t *out_targets,
                      const double *out_weights, const int32_t *mapping,
                      int64_t n, int64_t *new_out_offsets,
                      int32_t *new_out_targets, double *new_out_weights,
                      int64_t *new_in_offsets, int32_t *new_in_sources,
                      double *new_in_weights) {
    if (n == 0) {
        new_out_offsets[0] = 0;
        new_in_offsets[0] = 0;
        return 0;
    }
    int64_t *scratch = (int64_t *)malloc((size_t)(2 * n) * sizeof(int64_t));
    if (!scratch)
        return -1;
    int64_t *counts = scratch, *cursor = scratch + n;

    /* Out-CSR offsets: new vertex mapping[v] inherits v's degree. */
    for (int64_t v = 0; v < n; v++)
        counts[mapping[v]] = out_offsets[v + 1] - out_offsets[v];
    prefix_sum(counts, n, new_out_offsets);

    /* Scatter each old vertex's edge block into its new slot range,
     * applying the mapping to targets on the way through — this fuses
     * the reference's edge_array expansion, fancy-indexed remap and
     * stable by-source sort into one pass. */
    if (out_weights) {
        for (int64_t v = 0; v < n; v++) {
            int64_t pos = new_out_offsets[mapping[v]];
            int64_t end = out_offsets[v + 1];
            for (int64_t p = out_offsets[v]; p < end; p++, pos++) {
                new_out_targets[pos] = mapping[out_targets[p]];
                new_out_weights[pos] = out_weights[p];
            }
        }
    } else {
        for (int64_t v = 0; v < n; v++) {
            int64_t pos = new_out_offsets[mapping[v]];
            int64_t end = out_offsets[v + 1];
            for (int64_t p = out_offsets[v]; p < end; p++, pos++)
                new_out_targets[pos] = mapping[out_targets[p]];
        }
    }

    /* In-CSR offsets: count new targets, then the canonical derivation
     * from the new out-CSR. */
    memset(counts, 0, (size_t)n * sizeof(int64_t));
    int64_t num_edges = out_offsets[n];
    for (int64_t e = 0; e < num_edges; e++)
        counts[new_out_targets[e]]++;
    prefix_sum(counts, n, new_in_offsets);
    in_csr_from_out(new_out_offsets, new_out_targets, new_out_weights, n,
                    new_in_offsets, new_in_sources, new_in_weights, cursor);
    free(scratch);
    return 0;
}

/* Build the dual CSR from parallel edge arrays src/dst (values already
 * validated to lie in [0, n) by the Python caller).  Weight pointers
 * may be NULL (all three or none).  Returns 0, or -1 on allocation
 * failure. */
int32_t repro_build_csr(const int64_t *src, const int64_t *dst,
                        const double *weights, int64_t num_edges, int64_t n,
                        int64_t *out_offsets, int32_t *out_targets,
                        double *out_weights, int64_t *in_offsets,
                        int32_t *in_sources, double *in_weights) {
    if (n == 0) {
        out_offsets[0] = 0;
        in_offsets[0] = 0;
        return 0;
    }
    int64_t *scratch = (int64_t *)calloc((size_t)(2 * n), sizeof(int64_t));
    if (!scratch)
        return -1;
    int64_t *counts = scratch, *cursor = scratch + n;

    for (int64_t e = 0; e < num_edges; e++)
        counts[src[e]]++;
    prefix_sum(counts, n, out_offsets);

    /* Stable scatter by source: input order is preserved within each
     * source, matching np.argsort(src, kind="stable"). */
    memcpy(cursor, out_offsets, (size_t)n * sizeof(int64_t));
    if (weights) {
        for (int64_t e = 0; e < num_edges; e++) {
            int64_t pos = cursor[src[e]]++;
            out_targets[pos] = (int32_t)dst[e];
            out_weights[pos] = weights[e];
        }
    } else {
        for (int64_t e = 0; e < num_edges; e++)
            out_targets[cursor[src[e]]++] = (int32_t)dst[e];
    }

    memset(counts, 0, (size_t)n * sizeof(int64_t));
    for (int64_t e = 0; e < num_edges; e++)
        counts[dst[e]]++;
    prefix_sum(counts, n, in_offsets);
    in_csr_from_out(out_offsets, out_targets, out_weights, n, in_offsets,
                    in_sources, in_weights, cursor);
    free(scratch);
    return 0;
}
