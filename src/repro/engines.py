"""Unified registry for the compiled/reference engine pairs.

Three subsystems ship the same two-implementation pattern — a readable
numpy/Python *reference* and a compiled C *fast* kernel that is verified
bit-identical to it:

======  ===========================  =======================  ====================
domain  implementation module        environment variable     covers
======  ===========================  =======================  ====================
sim     ``repro.cachesim.fast``      ``REPRO_SIM_ENGINE``     cache-hierarchy simulation
trace   ``repro.framework.fasttrace``  ``REPRO_TRACE_ENGINE``  trace construction + Gorder placement
graph   ``repro.graph.fastgraph``    ``REPRO_GRAPH_ENGINE``   CSR relabel / build
======  ===========================  =======================  ====================

Historically each module carried its own copy of the dispatch rules.
This registry is the single implementation they now delegate to:

* :func:`resolve` — the shared precedence chain (explicit argument >
  environment variable > configured fallback > ``auto``), rejecting
  unknown values with an error that names where the value came from;
* :func:`validate_env` — eager validation of all three environment
  variables, so a campaign fails at startup with a clear message
  instead of deep inside a grid worker;
* :func:`status` — availability report (engine choice, whether the
  compiled kernel can be built, and the reason when it cannot) used by
  pipeline stages to declare engine requirements and by CI to assert
  the compiled engines exist.

Pipeline stages (:mod:`repro.pipeline.stages`) declare which domains
they dispatch on; ``run_grid`` validates those requirements up front.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass

__all__ = [
    "ENGINE_CHOICES",
    "THREADS_ENV",
    "EngineDomain",
    "DOMAINS",
    "resolve",
    "resolve_kernel_threads",
    "validate_env",
    "fast_available",
    "unavailable_reason",
    "sim_policies",
    "validate_policy",
    "status",
]

#: The recognized values, shared by every domain.  ``fast-threaded``
#: selects the pthread-chunked kernel variants; results stay bit-identical
#: to ``fast`` and ``reference`` (verified by the differential suite).
ENGINE_CHOICES = ("auto", "fast", "fast-threaded", "reference")

#: Campaign-wide worker-thread count for the ``fast-threaded`` kernels.
THREADS_ENV = "REPRO_KERNEL_THREADS"


@dataclass(frozen=True)
class EngineDomain:
    """One compiled/reference engine pair."""

    name: str  #: registry key ("sim" / "trace" / "graph")
    env_var: str  #: campaign-wide override variable
    module: str  #: dotted module exposing fast_available/kernel_unavailable_reason
    description: str  #: human label used in error messages


DOMAINS: dict[str, EngineDomain] = {
    d.name: d
    for d in (
        EngineDomain(
            "sim",
            "REPRO_SIM_ENGINE",
            "repro.cachesim.fast",
            "cache-simulation",
        ),
        EngineDomain(
            "trace",
            "REPRO_TRACE_ENGINE",
            "repro.framework.fasttrace",
            "trace-construction",
        ),
        EngineDomain(
            "graph",
            "REPRO_GRAPH_ENGINE",
            "repro.graph.fastgraph",
            "graph-structure",
        ),
    )
}


def _domain(name: str) -> EngineDomain:
    try:
        return DOMAINS[name]
    except KeyError:
        raise KeyError(
            f"unknown engine domain {name!r}; known domains: {tuple(DOMAINS)}"
        ) from None


def resolve(domain: str, explicit: str | None = None, fallback: str | None = None) -> str:
    """Resolve a domain's engine choice through the shared precedence chain.

    Precedence: ``explicit`` argument > the domain's environment variable
    > ``fallback`` (a per-config default such as ``HierarchyConfig.engine``)
    > ``"auto"``.  Unknown values raise :class:`ValueError` naming the
    source — an unknown environment value is an error, never a silent
    fall-back to ``auto``.
    """
    dom = _domain(domain)
    env = os.environ.get(dom.env_var)
    if explicit:
        choice, source = explicit, "call argument"
    elif env:
        choice, source = env, f"environment variable {dom.env_var}"
    elif fallback:
        choice, source = fallback, "configuration"
    else:
        choice, source = "auto", "default"
    if choice not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown {dom.description} engine {choice!r} (from {source}); "
            f"known engines: {ENGINE_CHOICES}"
        )
    return choice


def resolve_kernel_threads(
    explicit: int | None = None, fallback: int | None = None
) -> int:
    """Worker-thread count for the ``fast-threaded`` kernels.

    Same precedence chain as :func:`resolve`: explicit argument >
    ``REPRO_KERNEL_THREADS`` > configured fallback > auto (the machine's
    CPU count).  The result is clamped to at least 1; non-integer or
    non-positive environment values raise :class:`ValueError` naming the
    variable.
    """
    if explicit is not None:
        return max(1, int(explicit))
    env = os.environ.get(THREADS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{THREADS_ENV}={env!r} is not an integer"
            ) from None
        if value < 1:
            raise ValueError(f"{THREADS_ENV}={env!r} must be >= 1")
        return value
    if fallback is not None:
        return max(1, int(fallback))
    return max(1, os.cpu_count() or 1)


def validate_env(domains: tuple[str, ...] | None = None) -> dict[str, str]:
    """Eagerly validate the engine environment variables.

    Returns ``{domain: resolved engine}`` for the requested ``domains``
    (default: all).  Raises :class:`ValueError` on the first unknown
    value, naming the offending variable — called at campaign startup
    (CLI, ``run_grid``) so a typo like ``REPRO_SIM_ENGINE=fastest``
    fails loudly before any worker is spawned.  ``REPRO_KERNEL_THREADS``
    is validated alongside the engine variables.
    """
    resolve_kernel_threads()
    return {name: resolve(name) for name in (domains or tuple(DOMAINS))}


def _impl(domain: str):
    return importlib.import_module(_domain(domain).module)


def fast_available(domain: str) -> bool:
    """Whether the domain's compiled kernel can be used here."""
    return bool(_impl(domain).fast_available())


def unavailable_reason(domain: str) -> str | None:
    """Why ``fast_available(domain)`` is False (``None`` when it is True)."""
    return _impl(domain).kernel_unavailable_reason()


def sim_policies() -> tuple[str, ...]:
    """Registered replacement-policy names of the ``sim`` domain.

    The policy registry (:mod:`repro.cachesim.policies`) is the sim
    domain's second axis: both engines dispatch on it and stay
    bit-identical per policy, so validation belongs next to engine
    validation.
    """
    from repro.cachesim import policies

    return policies.policy_names()


def validate_policy(name: str, context: str = ""):
    """Validate a replacement-policy name against the registry.

    Returns the :class:`~repro.cachesim.policies.ReplacementPolicy`;
    unknown names raise
    :class:`~repro.cachesim.policies.UnknownPolicyError` (a
    :class:`ValueError`) listing the registered policies.
    """
    from repro.cachesim import policies

    return policies.get_policy(name, context=context)


def status() -> dict[str, dict]:
    """Availability report for every domain (CLI / CI / stage checks)."""
    report: dict[str, dict] = {}
    for name, dom in DOMAINS.items():
        report[name] = {
            "engine": resolve(name),
            "env_var": dom.env_var,
            "env_value": os.environ.get(dom.env_var),
            "fast_available": fast_available(name),
            "unavailable_reason": unavailable_reason(name),
        }
    report["sim"]["policies"] = list(sim_policies())
    report["kernel_threads"] = {
        "env_var": THREADS_ENV,
        "env_value": os.environ.get(THREADS_ENV),
        "resolved": resolve_kernel_threads(),
    }
    return report
